//! The KSJQ wire protocol: a line-oriented command language.
//!
//! Every request and every response frame is exactly one `\n`-terminated
//! line of UTF-8 text, so a session works from any language — or from
//! `nc` by hand. Both directions have typed representations
//! ([`Request`], [`Response`]) whose `Display` serialisation and
//! [`parse`](Request::parse) round-trip, which is what the client, the
//! server and the fuzz tests all build on.
//!
//! ## Versions
//!
//! A session starts in **v1**: strict lockstep, one response line per
//! request line, and `EXECUTE`/`QUERY` ship the entire skyline in a
//! single unbounded `ROWS` line. Sending `HELLO <max-version>` as a
//! request negotiates up: the server answers `HELLO v=<chosen>` with
//! `chosen = min(max-version, 2)` and the session switches to that
//! version. Under **v2** a result is *streamed* as a sequence of bounded
//! `ROWS … part=<i>/<m>` frames (at most [`ROWS_PER_CHUNK`] pairs and
//! [`MAX_ROWS_FRAME_BYTES`] bytes each), every non-final frame carrying a
//! `cursor=` token that `MORE <cursor>` can later resume from — pull-mode
//! paging served straight from the result cache.
//!
//! ## Commands
//!
//! ```text
//! HELLO <max-version>                               negotiate the protocol version
//! LOAD <name> INLINE <csv>                          csv rows separated by ';'
//! LOAD <name> SYNTHETIC <ind|corr|anti> n=<n> d=<d> [a=<a>] [g=<g>] [seed=<s>]
//! PREPARE <id> <left> JOIN <right> [AGG f,f…] [K <k>] [GOAL <goal>] [ALGO <a>] [KDOM <k>]
//! EXECUTE <id>
//! QUERY <left> JOIN <right> [AGG …] [K …] [GOAL …] [ALGO …] [KDOM …]
//! MORE <result>:<part>                              re-fetch one chunk (v2, cached results)
//! DEADLINE <ms>                                     per-session query deadline (0 clears it)
//! APPEND <name> ROWS <csv>                          append key,v,v… rows (no header) to a relation
//! DELETE <name> KEYS <k1,k2,…>                      delete all rows with the given join keys
//! EXPLAIN <id>
//! STATS
//! CLOSE
//! ```
//!
//! ### Distribution commands (replicas and the shard router)
//!
//! ```text
//! SYNC                                              list catalog relation names
//! SYNC <name>                                       export one relation as annotated CSV
//! STAGE <name> INLINE <csv>                         parse + hold a pending LOAD (no binding change)
//! APPEND <name> STAGE <csv>                         parse + hold a pending delta (two-phase append)
//! COMMIT <name>                                     atomically publish a staged relation or delta
//! ABORT <name>                                      drop a staged relation/delta, old binding stays live
//! STAGED?                                           list names with pending staged data (in-doubt resolution)
//! FETCH <left> JOIN <right> [AGG f,f…] PAIRS <l:r>;<l:r>…   joined values of given pairs
//! CHECK <left> JOIN <right> [AGG f,f…] K <k> ROWS <v,v…;v,v…>  is each row k-dominated here?
//! ```
//!
//! ## Responses
//!
//! ```text
//! OK <info>
//! HELLO v=<version>
//! ROWS k=<k> us=<micros> cached=<0|1> n=<n> <l>:<r> <l>:<r> …            (v1: whole result)
//! ROWS k=<k> us=<micros> cached=<0|1> n=<total> part=<i>/<m> [cursor=<c>] <l>:<r> …  (v2 chunk)
//! EXPLAIN <one-line plan summary>
//! STATS connections=… requests=… … cache_hits=… cache_misses=…
//! CATALOG n=<n> epoch=<e> <name> <name> …           reply to SYNC (epoch = catalog epoch)
//! RELATION <name> <csv>                             reply to SYNC <name> (rows ';'-separated)
//! VALS n=<n> <v,v…;v,v…>                            reply to FETCH
//! CHECKED n=<n> <01…>                               reply to CHECK (one bit per row)
//! STAGED n=<n> <name> <name> …                      reply to STAGED? (names with pending stages)
//! ERR <code> <message>
//! BYE
//! ```
//!
//! `ERR` frames lead with a stable machine-readable [`ErrorCode`] token
//! (`busy`, `timeout`, `unavailable`, `parse`, `recovering`, `invalid`,
//! `internal`) followed by the human-readable message. Frames from older
//! peers whose first word is not a known code parse as
//! [`ErrorCode::Unknown`] with the full text preserved as the message.
//!
//! Goals use the compact `FromStr` spellings of [`Goal`] (`exact:7`,
//! `skyline`, `atleast:10:binary`); algorithms and kdom subroutines use
//! their `Display` names. Inline CSV must not contain `';'` (the row
//! separator on the wire) — none of the toolchain's CSVs do.

use ksjq_core::{Algorithm, Goal, KdomAlgo, QueryPlan};
use ksjq_datagen::{DataType, DatasetSpec};
use ksjq_join::AggFunc;
use std::fmt;

/// Hard cap on one **request** line, enforced by the server: anything
/// longer is answered with an error frame and discarded — never buffered
/// unboundedly, never a panic. v1 response lines are not capped (a v1
/// `ROWS` frame carries the whole skyline), so clients must not impose
/// this limit on what they read; v2 `ROWS` chunks are bounded by
/// [`MAX_ROWS_FRAME_BYTES`].
pub const MAX_LINE_BYTES: usize = 1 << 20;

/// The newest protocol version this build speaks. `HELLO n` negotiates
/// `min(n, PROTOCOL_VERSION)`.
pub const PROTOCOL_VERSION: u32 = 2;

/// Maximum `(left, right)` pairs per v2 `ROWS` chunk frame. Sized so the
/// worst-case serialised frame (every pair two ten-digit ids) stays under
/// [`MAX_ROWS_FRAME_BYTES`] — the unit test `worst_case_chunk_frame_fits`
/// pins the arithmetic.
pub const ROWS_PER_CHUNK: usize = 2048;

/// Upper bound on one serialised v2 `ROWS` chunk frame, newline included.
pub const MAX_ROWS_FRAME_BYTES: usize = 64 * 1024;

/// A resumption point into a chunked result: which cached result, and
/// which 1-based part to fetch. Serialised as the single token
/// `<result>:<part>` — in `MORE` requests and in the `cursor=` field of
/// v2 `ROWS` frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cursor {
    /// Server-assigned id of the cached result (see
    /// [`ResultCache`](crate::ResultCache)).
    pub result: u64,
    /// 1-based part number to fetch next.
    pub part: u32,
}

impl Cursor {
    /// Parse the `<result>:<part>` wire token.
    pub fn parse(token: &str) -> ProtoResult<Cursor> {
        let (result, part) = token
            .split_once(':')
            .ok_or_else(|| format!("bad cursor {token:?} (expected <result>:<part>)"))?;
        let result = result
            .parse::<u64>()
            .map_err(|_| format!("bad cursor {token:?}"))?;
        let part = part
            .parse::<u32>()
            .map_err(|_| format!("bad cursor {token:?}"))?;
        if part == 0 {
            return Err(format!("bad cursor {token:?}: parts are 1-based"));
        }
        Ok(Cursor { result, part })
    }
}

impl fmt::Display for Cursor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.result, self.part)
    }
}

/// Protocol-level result: errors are plain messages destined for an
/// `ERR` frame.
pub type ProtoResult<T> = Result<T, String>;

/// Stable machine-readable category of an `ERR` frame — the first token
/// after `ERR`, so clients and tests branch on the code instead of
/// string-matching the human-readable message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ErrorCode {
    /// Connection shed by admission control; retry against another
    /// replica or later.
    Busy,
    /// The request's deadline expired before execution finished.
    Timeout,
    /// A required shard/replica could not be reached (router) or the
    /// backend is gone.
    Unavailable,
    /// The request line did not parse.
    Parse,
    /// The server is replaying its WAL or re-cloning from its primary
    /// and refuses reads that could be stale or torn.
    Recovering,
    /// The request parsed but is semantically invalid here (unknown
    /// relation, bad k, unknown id, …).
    Invalid,
    /// An unexpected server-side failure (a panicked worker, say).
    Internal,
    /// The frame carried no recognised code (pre-code peers, foreign
    /// servers); the full text stays in the message.
    Unknown,
}

impl ErrorCode {
    /// The wire token (`Display` emits the same; [`ErrorCode::Unknown`]
    /// has no token — it is the absence of one).
    pub fn token(self) -> &'static str {
        match self {
            ErrorCode::Busy => "busy",
            ErrorCode::Timeout => "timeout",
            ErrorCode::Unavailable => "unavailable",
            ErrorCode::Parse => "parse",
            ErrorCode::Recovering => "recovering",
            ErrorCode::Invalid => "invalid",
            ErrorCode::Internal => "internal",
            ErrorCode::Unknown => "unknown",
        }
    }

    /// Parse a wire token; `None` for anything unrecognised (the caller
    /// treats the whole text as an [`ErrorCode::Unknown`] message).
    pub fn from_token(token: &str) -> Option<ErrorCode> {
        Some(match token {
            "busy" => ErrorCode::Busy,
            "timeout" => ErrorCode::Timeout,
            "unavailable" => ErrorCode::Unavailable,
            "parse" => ErrorCode::Parse,
            "recovering" => ErrorCode::Recovering,
            "invalid" => ErrorCode::Invalid,
            "internal" => ErrorCode::Internal,
            _ => return None,
        })
    }

    /// Is a retry (against the same or another backend) reasonable?
    /// `busy`, `timeout`, `unavailable` and `recovering` are transient;
    /// the rest are deterministic failures.
    pub fn is_transient(self) -> bool {
        matches!(
            self,
            ErrorCode::Busy | ErrorCode::Timeout | ErrorCode::Unavailable | ErrorCode::Recovering
        )
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.token())
    }
}

/// Where `LOAD` gets its data.
#[derive(Debug, Clone, PartialEq)]
pub enum LoadSource {
    /// CSV text shipped on the command line (rows `';'`-separated on the
    /// wire, newline-separated here). First column is the join key; see
    /// `Catalog::register_csv` for the header annotation grammar.
    Inline {
        /// The CSV text, newline row separators.
        csv: String,
    },
    /// Server-side synthetic generation (the paper's Table 7 knobs).
    Synthetic(SyntheticSpec),
}

/// Knobs of a `LOAD … SYNTHETIC` request, mirroring [`DatasetSpec`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SyntheticSpec {
    /// Data distribution.
    pub data_type: DataType,
    /// Number of tuples.
    pub n: usize,
    /// Total attributes (`d = a + l`).
    pub d: usize,
    /// Aggregate-slot attributes (`a ≤ d`).
    pub a: usize,
    /// Join groups.
    pub g: usize,
    /// RNG seed.
    pub seed: u64,
}

impl SyntheticSpec {
    /// The equivalent generator spec.
    pub fn dataset_spec(&self) -> DatasetSpec {
        DatasetSpec {
            n: self.n,
            agg_attrs: self.a,
            local_attrs: self.d - self.a,
            groups: self.g,
            data_type: self.data_type,
            seed: self.seed,
        }
    }
}

/// The query half of `PREPARE` / `QUERY`: an owned, wire-transportable
/// [`QueryPlan`] description.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanSpec {
    /// Left catalog relation name.
    pub left: String,
    /// Right catalog relation name.
    pub right: String,
    /// Aggregation functions, slot order.
    pub aggs: Vec<AggFunc>,
    /// What to compute.
    pub goal: Goal,
    /// Which KSJQ algorithm runs it.
    pub algorithm: Algorithm,
    /// Optional kdom subroutine override.
    pub kdom: Option<KdomAlgo>,
}

impl PlanSpec {
    /// A spec with all defaults (equality join, no aggregation, ordinary
    /// skyline join, grouping algorithm).
    pub fn new(left: impl Into<String>, right: impl Into<String>) -> Self {
        PlanSpec {
            left: left.into(),
            right: right.into(),
            aggs: Vec::new(),
            goal: Goal::SkylineJoin,
            algorithm: Algorithm::default(),
            kdom: None,
        }
    }

    /// Set the aggregation functions.
    pub fn aggs(mut self, aggs: &[AggFunc]) -> Self {
        self.aggs = aggs.to_vec();
        self
    }

    /// Set the goal.
    pub fn goal(mut self, goal: Goal) -> Self {
        self.goal = goal;
        self
    }

    /// Shorthand for [`goal(Goal::Exact(k))`](Self::goal).
    pub fn k(self, k: usize) -> Self {
        self.goal(Goal::Exact(k))
    }

    /// Set the algorithm.
    pub fn algorithm(mut self, algorithm: Algorithm) -> Self {
        self.algorithm = algorithm;
        self
    }

    /// Set the kdom subroutine override.
    pub fn kdom(mut self, kdom: KdomAlgo) -> Self {
        self.kdom = Some(kdom);
        self
    }

    /// The engine-side plan this spec describes.
    pub fn to_plan(&self) -> QueryPlan {
        let mut plan = QueryPlan::new(self.left.as_str(), self.right.as_str())
            .aggregates(&self.aggs)
            .goal(self.goal)
            .algorithm(self.algorithm);
        if let Some(kdom) = self.kdom {
            plan = plan.kdom(kdom);
        }
        plan
    }

    /// A normalised cache key: every wire spelling of the same logical
    /// plan (`K 7` vs `GOAL exact:7`, keyword order, case) fingerprints
    /// identically, because the key is derived from the parsed form.
    pub fn fingerprint(&self) -> String {
        match self.kdom {
            Some(kdom) => format!("{}|kdom={kdom}", self.to_plan()),
            None => format!("{}", self.to_plan()),
        }
    }
}

/// One client command.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Negotiate the protocol version: the server picks
    /// `min(version, PROTOCOL_VERSION)` and the session switches to it.
    Hello {
        /// Highest version the client speaks (≥ 1).
        version: u32,
    },
    /// Fetch one chunk of a cached result (v2 sessions only).
    More {
        /// Where to resume, as handed out in a `cursor=` field.
        cursor: Cursor,
    },
    /// Set the session's query deadline: every subsequent `EXECUTE` /
    /// `QUERY` / `CHECK` must finish within this many milliseconds of its
    /// arrival or is answered `ERR timeout`. `0` clears the deadline.
    /// Tightened against the server's own `--query-timeout`, if any (the
    /// smaller budget wins).
    Deadline {
        /// Per-request budget in milliseconds (0 = no session deadline).
        ms: u64,
    },
    /// Register a relation in the server's catalog.
    Load {
        /// Catalog name to register under.
        name: String,
        /// Data source.
        source: LoadSource,
    },
    /// Prepare a named query (validates everything; find-k goals resolve
    /// here). Re-preparing an existing id replaces it.
    Prepare {
        /// Session-map id for later `EXECUTE` / `EXPLAIN`.
        id: String,
        /// The query.
        plan: PlanSpec,
    },
    /// Execute a prepared query.
    Execute {
        /// A previously `PREPARE`d id.
        id: String,
    },
    /// One-shot prepare + execute.
    Query {
        /// The query.
        plan: PlanSpec,
    },
    /// Describe what a prepared query will run.
    Explain {
        /// A previously `PREPARE`d id.
        id: String,
    },
    /// Server counters.
    Stats,
    /// List the catalog (`SYNC`) or export one relation as annotated CSV
    /// (`SYNC <name>`) — what a replica replays at startup.
    Sync {
        /// `None` lists names; `Some` exports that relation.
        name: Option<String>,
    },
    /// Parse and hold a pending `LOAD` without touching the live binding
    /// (phase one of the router's two-phase catalog update). A header-only
    /// CSV stages an empty relation.
    Stage {
        /// Catalog name the staged data will commit under.
        name: String,
        /// CSV text, newline row separators (`';'` on the wire).
        csv: String,
    },
    /// Atomically publish a staged relation — or apply a staged append
    /// delta (phase two of either two-phase path).
    Commit {
        /// A previously `STAGE`d (or `APPEND … STAGE`d) name.
        name: String,
    },
    /// Drop a staged relation or delta; the old binding stays live.
    Abort {
        /// A previously staged name (idempotent if absent).
        name: String,
    },
    /// List every name with a pending staged relation or delta — how a
    /// restarting router resolves in-doubt two-phase transactions: a
    /// replica whose stage survives gets the logged decision replayed; a
    /// replica with nothing staged has already resolved.
    StagedQuery,
    /// Append rows to a registered relation, deriving the next catalog
    /// epoch (live catalogs). Rows are header-less CSV against the
    /// relation's existing schema: first cell the join key, then the
    /// attribute values.
    Append {
        /// A registered relation name.
        name: String,
        /// CSV rows, newline-separated here (`';'` on the wire).
        rows: String,
        /// `true` (`APPEND … STAGE`): parse and hold the delta for a
        /// later `COMMIT` — the router's two-phase path. `false`
        /// (`APPEND … ROWS`): apply immediately.
        staged: bool,
    },
    /// Delete every row whose join key is listed, deriving the next
    /// catalog epoch.
    Delete {
        /// A registered relation name.
        name: String,
        /// Join-key strings (the CSV first-column values), comma-joined
        /// on the wire.
        keys: Vec<String>,
    },
    /// Materialise the joined values of specific `(left, right)` pairs —
    /// the router fetches candidate rows from their owning shard.
    Fetch {
        /// Left catalog relation name.
        left: String,
        /// Right catalog relation name.
        right: String,
        /// Aggregation functions, slot order.
        aggs: Vec<AggFunc>,
        /// The pairs to join, as shard-local tuple ids.
        pairs: Vec<(u32, u32)>,
    },
    /// For each probe row (a full joined-value vector, internal
    /// normalised form), does *this* shard hold any joined tuple that
    /// k-dominates it? The router's cross-shard verification round.
    Check {
        /// Left catalog relation name.
        left: String,
        /// Right catalog relation name.
        right: String,
        /// Aggregation functions, slot order.
        aggs: Vec<AggFunc>,
        /// The `k` of the dominance test.
        k: usize,
        /// Probe rows, each of joined arity `l1 + l2 + a`.
        rows: Vec<Vec<f64>>,
    },
    /// End the session.
    Close,
}

/// First word + rest, whitespace-trimmed.
fn split_word(s: &str) -> (&str, &str) {
    let s = s.trim_start();
    match s.find(char::is_whitespace) {
        Some(i) => (&s[..i], s[i..].trim_start()),
        None => (s, ""),
    }
}

/// Catalog names and session ids: one non-empty token without the wire's
/// structural characters.
fn validate_name(kind: &str, name: &str) -> ProtoResult<()> {
    if name.is_empty() {
        return Err(format!("missing {kind}"));
    }
    if name.contains(|c: char| c.is_whitespace() || c == ';') {
        return Err(format!("invalid {kind} {name:?}: no whitespace or ';'"));
    }
    Ok(())
}

fn parse_agg(s: &str) -> ProtoResult<AggFunc> {
    let t = s.trim().to_ascii_lowercase();
    match t.as_str() {
        "sum" => return Ok(AggFunc::Sum),
        "min" => return Ok(AggFunc::Min),
        "max" => return Ok(AggFunc::Max),
        _ => {}
    }
    if let Some(args) = t.strip_prefix("wsum(").and_then(|r| r.strip_suffix(')')) {
        if let Some((l, r)) = args.split_once(',') {
            let (l, r) = (
                l.trim().parse::<f64>().map_err(|e| e.to_string())?,
                r.trim().parse::<f64>().map_err(|e| e.to_string())?,
            );
            let func = AggFunc::WeightedSum { left: l, right: r };
            func.validate().map_err(|e| e.to_string())?;
            return Ok(func);
        }
    }
    Err(format!(
        "unknown aggregate {s:?} (expected sum, min, max or wsum(l,r))"
    ))
}

fn agg_token(func: &AggFunc) -> String {
    func.to_string() // "sum", "min", "max", "wsum(l,r)" — all single tokens
}

/// Split an `AGG` list on top-level commas only (`wsum(l,r)` has one
/// inside its parentheses).
fn split_agg_list(s: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut start = 0;
    for (i, c) in s.char_indices() {
        match c {
            '(' => depth += 1,
            ')' => depth = depth.saturating_sub(1),
            ',' if depth == 0 => {
                out.push(&s[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    out.push(&s[start..]);
    out
}

/// The compact, single-token goal spelling [`Goal`]'s `FromStr` accepts.
fn goal_token(goal: Goal) -> String {
    match goal {
        Goal::Exact(k) => format!("exact:{k}"),
        Goal::SkylineJoin => "skyline".into(),
        Goal::AtLeast(delta, s) => format!("atleast:{delta}:{s}"),
        Goal::AtMost(delta, s) => format!("atmost:{delta}:{s}"),
    }
}

/// Parse a `';'`-separated blob of `<l>:<r>` pair tokens.
fn parse_pairs_blob(blob: &str) -> ProtoResult<Vec<(u32, u32)>> {
    blob.split(';')
        .map(|t| {
            let (l, r) = t
                .split_once(':')
                .ok_or_else(|| format!("bad pair {t:?} (expected <l>:<r>)"))?;
            Ok((
                l.parse::<u32>().map_err(|_| format!("bad pair {t:?}"))?,
                r.parse::<u32>().map_err(|_| format!("bad pair {t:?}"))?,
            ))
        })
        .collect()
}

fn pairs_blob(pairs: &[(u32, u32)]) -> String {
    let tokens: Vec<String> = pairs.iter().map(|(l, r)| format!("{l}:{r}")).collect();
    tokens.join(";")
}

/// Parse a value-row blob: rows `';'`-separated, values `','`-separated.
/// Every value must be a finite f64 (relations are NaN-free by
/// construction, and `f64`'s `Display` is shortest-exact, so the blob
/// round-trips bit-identically).
fn parse_rows_blob(blob: &str) -> ProtoResult<Vec<Vec<f64>>> {
    blob.split(';')
        .map(|row| {
            row.split(',')
                .map(|v| {
                    let x = v.parse::<f64>().map_err(|_| format!("bad value {v:?}"))?;
                    if !x.is_finite() {
                        return Err(format!("non-finite value {v:?}"));
                    }
                    Ok(x)
                })
                .collect()
        })
        .collect()
}

fn rows_blob(rows: &[Vec<f64>]) -> String {
    let tokens: Vec<String> = rows
        .iter()
        .map(|row| {
            let vals: Vec<String> = row.iter().map(f64::to_string).collect();
            vals.join(",")
        })
        .collect();
    tokens.join(";")
}

/// The shared `<left> JOIN <right>` prefix of `FETCH` / `CHECK`.
fn parse_join_names(rest: &str) -> ProtoResult<(String, String, &str)> {
    let (left, rest) = split_word(rest);
    validate_name("left relation name", left)?;
    let (join_kw, rest) = split_word(rest);
    if !join_kw.eq_ignore_ascii_case("JOIN") {
        return Err(format!("expected JOIN after {left:?}, got {join_kw:?}"));
    }
    let (right, rest) = split_word(rest);
    validate_name("right relation name", right)?;
    Ok((left.into(), right.into(), rest))
}

fn parse_plan(rest: &str) -> ProtoResult<PlanSpec> {
    let (left, rest) = split_word(rest);
    validate_name("left relation name", left)?;
    let (join_kw, rest) = split_word(rest);
    if !join_kw.eq_ignore_ascii_case("JOIN") {
        return Err(format!("expected JOIN after {left:?}, got {join_kw:?}"));
    }
    let (right, mut rest) = split_word(rest);
    validate_name("right relation name", right)?;
    let mut spec = PlanSpec::new(left, right);
    while !rest.is_empty() {
        let (kw, after) = split_word(rest);
        let (value, after) = split_word(after);
        if value.is_empty() {
            return Err(format!("{} needs a value", kw.to_ascii_uppercase()));
        }
        match kw.to_ascii_uppercase().as_str() {
            "AGG" => {
                spec.aggs = split_agg_list(value)
                    .into_iter()
                    .map(parse_agg)
                    .collect::<ProtoResult<_>>()?;
            }
            "K" => {
                let k = value
                    .parse::<usize>()
                    .map_err(|_| format!("K needs an integer, got {value:?}"))?;
                spec.goal = Goal::Exact(k);
            }
            "GOAL" => spec.goal = value.parse::<Goal>()?,
            "ALGO" => spec.algorithm = value.parse::<Algorithm>()?,
            "KDOM" => spec.kdom = Some(value.parse::<KdomAlgo>()?),
            other => return Err(format!("unknown plan keyword {other:?}")),
        }
        rest = after;
    }
    Ok(spec)
}

fn plan_tail(plan: &PlanSpec) -> String {
    let mut out = String::new();
    if !plan.aggs.is_empty() {
        let list: Vec<String> = plan.aggs.iter().map(agg_token).collect();
        out.push_str(&format!(" AGG {}", list.join(",")));
    }
    match plan.goal {
        Goal::SkylineJoin => {} // the default — omitted
        Goal::Exact(k) => out.push_str(&format!(" K {k}")),
        goal => out.push_str(&format!(" GOAL {}", goal_token(goal))),
    }
    if plan.algorithm != Algorithm::default() {
        out.push_str(&format!(" ALGO {}", plan.algorithm));
    }
    if let Some(kdom) = plan.kdom {
        out.push_str(&format!(" KDOM {kdom}"));
    }
    out
}

impl Request {
    /// Parse one request line. Never panics, whatever the input.
    pub fn parse(line: &str) -> ProtoResult<Request> {
        let line = line.trim();
        if line.is_empty() {
            return Err("empty request".into());
        }
        let (cmd, rest) = split_word(line);
        match cmd.to_ascii_uppercase().as_str() {
            "HELLO" => {
                let (version, trailing) = split_word(rest);
                if !trailing.is_empty() {
                    return Err(format!("unexpected trailing input {trailing:?}"));
                }
                let version = version
                    .parse::<u32>()
                    .map_err(|_| format!("HELLO needs a version number, got {version:?}"))?;
                if version == 0 {
                    return Err("HELLO needs a version ≥ 1".into());
                }
                Ok(Request::Hello { version })
            }
            "MORE" => {
                let (token, trailing) = split_word(rest);
                if token.is_empty() {
                    return Err("MORE needs a cursor".into());
                }
                if !trailing.is_empty() {
                    return Err(format!("unexpected trailing input {trailing:?}"));
                }
                Ok(Request::More {
                    cursor: Cursor::parse(token)?,
                })
            }
            "DEADLINE" => {
                let (ms, trailing) = split_word(rest);
                if !trailing.is_empty() {
                    return Err(format!("unexpected trailing input {trailing:?}"));
                }
                let ms = ms
                    .parse::<u64>()
                    .map_err(|_| format!("DEADLINE needs milliseconds, got {ms:?}"))?;
                Ok(Request::Deadline { ms })
            }
            "LOAD" => {
                let (name, rest) = split_word(rest);
                validate_name("relation name", name)?;
                let (kind, rest) = split_word(rest);
                match kind.to_ascii_uppercase().as_str() {
                    "INLINE" => {
                        if rest.is_empty() {
                            return Err("LOAD … INLINE needs CSV text".into());
                        }
                        Ok(Request::Load {
                            name: name.into(),
                            source: LoadSource::Inline {
                                csv: rest.replace(';', "\n"),
                            },
                        })
                    }
                    "SYNTHETIC" => {
                        let (dt, rest) = split_word(rest);
                        let data_type = dt.parse::<DataType>()?;
                        let (mut n, mut d, mut a, mut g, mut seed) = (None, None, 0usize, 10, 42);
                        for kv in rest.split_whitespace() {
                            let (key, value) = kv
                                .split_once('=')
                                .ok_or_else(|| format!("expected key=value, got {kv:?}"))?;
                            let int = || {
                                value
                                    .parse::<usize>()
                                    .map_err(|_| format!("{key} needs an integer, got {value:?}"))
                            };
                            match key.to_ascii_lowercase().as_str() {
                                "n" => n = Some(int()?),
                                "d" => d = Some(int()?),
                                "a" => a = int()?,
                                "g" => g = int()?,
                                "seed" => seed = int()? as u64,
                                other => return Err(format!("unknown knob {other:?}")),
                            }
                        }
                        let n = n.ok_or("SYNTHETIC needs n=<tuples>")?;
                        let d = d.ok_or("SYNTHETIC needs d=<attributes>")?;
                        if n == 0 || d == 0 || a > d || g == 0 {
                            return Err(format!(
                                "invalid synthetic shape n={n} d={d} a={a} g={g} \
                                 (need n,d,g ≥ 1 and a ≤ d)"
                            ));
                        }
                        Ok(Request::Load {
                            name: name.into(),
                            source: LoadSource::Synthetic(SyntheticSpec {
                                data_type,
                                n,
                                d,
                                a,
                                g,
                                seed,
                            }),
                        })
                    }
                    other => Err(format!(
                        "unknown LOAD source {other:?} (expected INLINE or SYNTHETIC)"
                    )),
                }
            }
            "PREPARE" => {
                let (id, rest) = split_word(rest);
                validate_name("query id", id)?;
                Ok(Request::Prepare {
                    id: id.into(),
                    plan: parse_plan(rest)?,
                })
            }
            "QUERY" => Ok(Request::Query {
                plan: parse_plan(rest)?,
            }),
            "EXECUTE" | "EXPLAIN" => {
                let (id, trailing) = split_word(rest);
                validate_name("query id", id)?;
                if !trailing.is_empty() {
                    return Err(format!("unexpected trailing input {trailing:?}"));
                }
                Ok(if cmd.eq_ignore_ascii_case("EXECUTE") {
                    Request::Execute { id: id.into() }
                } else {
                    Request::Explain { id: id.into() }
                })
            }
            "STATS" | "CLOSE" => {
                if !rest.is_empty() {
                    return Err(format!("unexpected trailing input {rest:?}"));
                }
                Ok(if cmd.eq_ignore_ascii_case("STATS") {
                    Request::Stats
                } else {
                    Request::Close
                })
            }
            "SYNC" => {
                let (name, trailing) = split_word(rest);
                if !trailing.is_empty() {
                    return Err(format!("unexpected trailing input {trailing:?}"));
                }
                if name.is_empty() {
                    return Ok(Request::Sync { name: None });
                }
                validate_name("relation name", name)?;
                Ok(Request::Sync {
                    name: Some(name.into()),
                })
            }
            "STAGE" => {
                let (name, rest) = split_word(rest);
                validate_name("relation name", name)?;
                let (kind, rest) = split_word(rest);
                if !kind.eq_ignore_ascii_case("INLINE") {
                    return Err(format!("unknown STAGE source {kind:?} (expected INLINE)"));
                }
                if rest.is_empty() {
                    return Err("STAGE … INLINE needs CSV text".into());
                }
                Ok(Request::Stage {
                    name: name.into(),
                    csv: rest.replace(';', "\n"),
                })
            }
            "APPEND" => {
                let (name, rest) = split_word(rest);
                validate_name("relation name", name)?;
                let (mode, rest) = split_word(rest);
                let staged = match mode.to_ascii_uppercase().as_str() {
                    "ROWS" => false,
                    "STAGE" => true,
                    other => {
                        return Err(format!(
                            "unknown APPEND mode {other:?} (expected ROWS or STAGE)"
                        ))
                    }
                };
                if rest.is_empty() {
                    return Err("APPEND needs CSV rows".into());
                }
                Ok(Request::Append {
                    name: name.into(),
                    rows: rest.replace(';', "\n"),
                    staged,
                })
            }
            "DELETE" => {
                let (name, rest) = split_word(rest);
                validate_name("relation name", name)?;
                let (kw, rest) = split_word(rest);
                if !kw.eq_ignore_ascii_case("KEYS") {
                    return Err(format!("expected KEYS after {name:?}, got {kw:?}"));
                }
                let (list, trailing) = split_word(rest);
                if list.is_empty() {
                    return Err("DELETE needs KEYS <k1,k2,…>".into());
                }
                if !trailing.is_empty() {
                    return Err(format!("unexpected trailing input {trailing:?}"));
                }
                let keys: Vec<String> = list.split(',').map(String::from).collect();
                if keys.iter().any(String::is_empty) {
                    return Err("DELETE keys must be non-empty".into());
                }
                Ok(Request::Delete {
                    name: name.into(),
                    keys,
                })
            }
            "STAGED?" => {
                if !rest.is_empty() {
                    return Err(format!("unexpected trailing input {rest:?}"));
                }
                Ok(Request::StagedQuery)
            }
            "COMMIT" | "ABORT" => {
                let (name, trailing) = split_word(rest);
                validate_name("relation name", name)?;
                if !trailing.is_empty() {
                    return Err(format!("unexpected trailing input {trailing:?}"));
                }
                Ok(if cmd.eq_ignore_ascii_case("COMMIT") {
                    Request::Commit { name: name.into() }
                } else {
                    Request::Abort { name: name.into() }
                })
            }
            "FETCH" => {
                let (left, right, mut rest) = parse_join_names(rest)?;
                let mut aggs = Vec::new();
                let mut pairs = None;
                while !rest.is_empty() {
                    let (kw, after) = split_word(rest);
                    let (value, after) = split_word(after);
                    if value.is_empty() {
                        return Err(format!("{} needs a value", kw.to_ascii_uppercase()));
                    }
                    match kw.to_ascii_uppercase().as_str() {
                        "AGG" => {
                            aggs = split_agg_list(value)
                                .into_iter()
                                .map(parse_agg)
                                .collect::<ProtoResult<_>>()?;
                        }
                        "PAIRS" => pairs = Some(parse_pairs_blob(value)?),
                        other => return Err(format!("unknown FETCH keyword {other:?}")),
                    }
                    rest = after;
                }
                let pairs = pairs.ok_or("FETCH needs PAIRS <l:r>;<l:r>…")?;
                Ok(Request::Fetch {
                    left,
                    right,
                    aggs,
                    pairs,
                })
            }
            "CHECK" => {
                let (left, right, mut rest) = parse_join_names(rest)?;
                let mut aggs = Vec::new();
                let (mut k, mut rows) = (None, None);
                while !rest.is_empty() {
                    let (kw, after) = split_word(rest);
                    let (value, after) = split_word(after);
                    if value.is_empty() {
                        return Err(format!("{} needs a value", kw.to_ascii_uppercase()));
                    }
                    match kw.to_ascii_uppercase().as_str() {
                        "AGG" => {
                            aggs = split_agg_list(value)
                                .into_iter()
                                .map(parse_agg)
                                .collect::<ProtoResult<_>>()?;
                        }
                        "K" => {
                            k = Some(
                                value
                                    .parse::<usize>()
                                    .map_err(|_| format!("K needs an integer, got {value:?}"))?,
                            );
                        }
                        "ROWS" => rows = Some(parse_rows_blob(value)?),
                        other => return Err(format!("unknown CHECK keyword {other:?}")),
                    }
                    rest = after;
                }
                let k = k.ok_or("CHECK needs K <k>")?;
                let rows = rows.ok_or("CHECK needs ROWS <v,v…;v,v…>")?;
                Ok(Request::Check {
                    left,
                    right,
                    aggs,
                    k,
                    rows,
                })
            }
            other => Err(format!(
                "unknown command {other:?} (expected HELLO, LOAD, PREPARE, EXECUTE, QUERY, MORE, DEADLINE, APPEND, DELETE, EXPLAIN, STATS, SYNC, STAGE, COMMIT, ABORT, STAGED?, FETCH, CHECK or CLOSE)"
            )),
        }
    }
}

impl fmt::Display for Request {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Request::Hello { version } => write!(f, "HELLO {version}"),
            Request::More { cursor } => write!(f, "MORE {cursor}"),
            Request::Deadline { ms } => write!(f, "DEADLINE {ms}"),
            Request::Load { name, source } => match source {
                LoadSource::Inline { csv } => {
                    write!(
                        f,
                        "LOAD {name} INLINE {}",
                        csv.trim_end().replace('\n', ";")
                    )
                }
                LoadSource::Synthetic(s) => write!(
                    f,
                    "LOAD {name} SYNTHETIC {} n={} d={} a={} g={} seed={}",
                    s.data_type, s.n, s.d, s.a, s.g, s.seed
                ),
            },
            Request::Prepare { id, plan } => write!(
                f,
                "PREPARE {id} {} JOIN {}{}",
                plan.left,
                plan.right,
                plan_tail(plan)
            ),
            Request::Execute { id } => write!(f, "EXECUTE {id}"),
            Request::Query { plan } => write!(
                f,
                "QUERY {} JOIN {}{}",
                plan.left,
                plan.right,
                plan_tail(plan)
            ),
            Request::Explain { id } => write!(f, "EXPLAIN {id}"),
            Request::Stats => write!(f, "STATS"),
            Request::Sync { name: None } => write!(f, "SYNC"),
            Request::Sync { name: Some(name) } => write!(f, "SYNC {name}"),
            Request::Stage { name, csv } => {
                write!(
                    f,
                    "STAGE {name} INLINE {}",
                    csv.trim_end().replace('\n', ";")
                )
            }
            Request::Commit { name } => write!(f, "COMMIT {name}"),
            Request::Abort { name } => write!(f, "ABORT {name}"),
            Request::StagedQuery => write!(f, "STAGED?"),
            Request::Append { name, rows, staged } => write!(
                f,
                "APPEND {name} {} {}",
                if *staged { "STAGE" } else { "ROWS" },
                rows.trim_end().replace('\n', ";")
            ),
            Request::Delete { name, keys } => {
                write!(f, "DELETE {name} KEYS {}", keys.join(","))
            }
            Request::Fetch {
                left,
                right,
                aggs,
                pairs,
            } => {
                write!(f, "FETCH {left} JOIN {right}")?;
                if !aggs.is_empty() {
                    let list: Vec<String> = aggs.iter().map(agg_token).collect();
                    write!(f, " AGG {}", list.join(","))?;
                }
                write!(f, " PAIRS {}", pairs_blob(pairs))
            }
            Request::Check {
                left,
                right,
                aggs,
                k,
                rows,
            } => {
                write!(f, "CHECK {left} JOIN {right}")?;
                if !aggs.is_empty() {
                    let list: Vec<String> = aggs.iter().map(agg_token).collect();
                    write!(f, " AGG {}", list.join(","))?;
                }
                write!(f, " K {k} ROWS {}", rows_blob(rows))
            }
            Request::Close => write!(f, "CLOSE"),
        }
    }
}

/// A skyline result set as shipped over the wire (v1: one frame carries
/// everything; under v2 this is what draining a chunk stream reassembles).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RowSet {
    /// The `k` the query ran at (for find-k goals: the chosen `k`).
    pub k: usize,
    /// Server-side execution time in microseconds (0 for cache hits).
    pub micros: u64,
    /// Was this answered from the result cache?
    pub cached: bool,
    /// The skyline, as `(left, right)` base tuple ids, sorted.
    pub pairs: Vec<(u32, u32)>,
}

/// One bounded chunk of a v2 result stream: `part` of `parts`, carrying
/// at most [`ROWS_PER_CHUNK`] pairs, with `total` the size of the whole
/// result. `k`/`micros`/`cached` repeat the first frame's values on every
/// part so each frame stands alone.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RowChunk {
    /// The `k` the query ran at.
    pub k: usize,
    /// Server-side execution time in microseconds (0 for cache hits).
    pub micros: u64,
    /// Was this answered from the result cache?
    pub cached: bool,
    /// Total pairs across all parts (the `n=` field).
    pub total: usize,
    /// 1-based part number.
    pub part: u32,
    /// Total parts in the stream (≥ 1; an empty result is one empty part).
    pub parts: u32,
    /// Where `MORE` can fetch the *next* part — present on every
    /// non-final frame of a cursor-addressable (cached) result.
    pub cursor: Option<Cursor>,
    /// This chunk's pairs, in result order.
    pub pairs: Vec<(u32, u32)>,
}

impl RowChunk {
    /// Is this the final part of its stream?
    pub fn is_last(&self) -> bool {
        self.part == self.parts
    }
}

/// Server counters reported by `STATS`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServerStats {
    /// Connections accepted since startup.
    pub connections: u64,
    /// Requests handled (all kinds).
    pub requests: u64,
    /// Requests answered with an `ERR` frame.
    pub errors: u64,
    /// Named prepared queries currently in the session map.
    pub sessions: u64,
    /// Relations in the catalog.
    pub relations: u64,
    /// Result-cache hits.
    pub cache_hits: u64,
    /// Result-cache misses.
    pub cache_misses: u64,
    /// Result-cache evictions.
    pub cache_evictions: u64,
    /// Entries currently cached.
    pub cache_len: u64,
    /// Worker threads serving connections.
    pub workers: u64,
    /// Joined-tuple dominance tests performed by the verification kernel
    /// across all (non-cached) executions since startup.
    pub dom_tests: u64,
    /// Attribute positions compared by the verification kernel across all
    /// (non-cached) executions since startup — the split-side kernel's
    /// progress metric (see `ksjq_core::Counts::attr_cmps`).
    pub attr_cmps: u64,
    /// Cumulative dominator-generation wall-clock in microseconds across
    /// all (non-cached) executions — the dominator-based algorithm's
    /// `O(n²)` phase (see `ksjq_core::PhaseTimes::dominator_gen`); zero
    /// when only grouping/naive plans have run.
    pub domgen_us: u64,
    /// Connections shed with `ERR busy` because the `--max-conns`
    /// admission limit was reached.
    pub shed: u64,
    /// Connections reaped by the idle timeout or the mid-frame stall
    /// (slow-loris) deadline.
    pub reaped: u64,
    /// High-water mark, in bytes, of any single connection's pending
    /// outbound buffer — under v2 streaming this stays bounded by one
    /// chunk frame however large the result (the backpressure invariant).
    pub peak_buf: u64,
    /// Queries the shard router fanned out to more than one shard
    /// (always 0 on a plain `ksjq-serverd`).
    pub fanout_queries: u64,
    /// Cumulative wall-clock the router spent merging per-shard pair
    /// lists, in microseconds.
    pub merge_us: u64,
    /// Shard calls the router retried on another replica after an I/O
    /// failure.
    pub shard_retries: u64,
    /// Shard calls that failed on *every* replica (each one surfaced as
    /// an `ERR unavailable`).
    pub shard_errors: u64,
    /// Catalog version: bumped by every `LOAD`, `COMMIT`, `APPEND` and
    /// `DELETE` (and by replica resyncs). Queries pin the epoch they start
    /// under; `SYNC` reports it so replicas can detect staleness.
    pub catalog_epoch: u64,
    /// Cached results upgraded in place by the incremental maintainer
    /// after an `APPEND` (instead of being evicted and recomputed).
    pub delta_maintained: u64,
    /// Rows appended via `APPEND` since startup (cumulative, all
    /// relations).
    pub delta_rows: u64,
    /// Requests answered `ERR timeout` because a `DEADLINE` or the
    /// `--query-timeout` budget expired before execution finished.
    pub timeouts: u64,
    /// Records appended to the write-ahead log since startup (0 when the
    /// server runs without `--data-dir`).
    pub wal_records: u64,
    /// WAL rotations since startup: active-log seals driven by
    /// `--wal-max-bytes` (0 without a size cap).
    pub wal_segments: u64,
    /// Worker panics caught and surfaced as `ERR internal` — each one a
    /// bug (or an injected `panic=` fault) that did *not* take the
    /// process, the session or the pool down.
    pub panics: u64,
}

/// One server reply.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Success without a result set.
    Ok(String),
    /// The negotiated protocol version.
    Hello {
        /// Version the session now speaks.
        version: u32,
    },
    /// A skyline result set in one frame (v1).
    Rows(RowSet),
    /// One bounded chunk of a streamed result (v2).
    Chunk(RowChunk),
    /// A one-line plan summary.
    Explain(String),
    /// Server counters.
    Stats(ServerStats),
    /// Catalog relation names and version (reply to `SYNC`).
    Catalog {
        /// Catalog epoch at the time of the snapshot — bumped by every
        /// mutation, so a replica can compare against its last-synced
        /// epoch and re-clone only when stale.
        epoch: u64,
        /// Registered relation names, sorted.
        names: Vec<String>,
    },
    /// One relation exported as annotated CSV (reply to `SYNC <name>`).
    Relation {
        /// Catalog name.
        name: String,
        /// CSV text, newline row separators (`';'` on the wire).
        csv: String,
    },
    /// Joined-value rows (reply to `FETCH`), request-pair order.
    Vals(Vec<Vec<f64>>),
    /// One dominance bit per probe row (reply to `CHECK`), request order.
    Checked(Vec<bool>),
    /// Names with pending staged data (reply to `STAGED?`), sorted — the
    /// stage tokens a restarting router matches its decision WAL against.
    Staged {
        /// Relation names with a staged relation or delta.
        names: Vec<String>,
    },
    /// The request failed; the session stays usable.
    Error {
        /// Machine-readable failure category (the first `ERR` token).
        code: ErrorCode,
        /// Human-readable detail (may be empty).
        message: String,
    },
    /// Session closed.
    Bye,
}

/// Keep free-text payloads one-line so they cannot break framing.
fn one_line(s: &str) -> String {
    s.replace(['\n', '\r'], "; ")
}

impl Response {
    /// An `ERR` response with a machine-readable code.
    pub fn err(code: ErrorCode, message: impl Into<String>) -> Response {
        Response::Error {
            code,
            message: message.into(),
        }
    }

    /// Parse one response line. Never panics, whatever the input.
    pub fn parse(line: &str) -> ProtoResult<Response> {
        let line = line.trim();
        let (word, rest) = split_word(line);
        match word.to_ascii_uppercase().as_str() {
            "OK" => Ok(Response::Ok(rest.to_owned())),
            "ERR" => {
                let (first, tail) = split_word(rest);
                Ok(match ErrorCode::from_token(first) {
                    Some(code) => Response::err(code, tail),
                    // Pre-code peers: the whole text is the message.
                    None => Response::err(ErrorCode::Unknown, rest),
                })
            }
            "EXPLAIN" => Ok(Response::Explain(rest.to_owned())),
            "BYE" => Ok(Response::Bye),
            "HELLO" => {
                let mut version = None;
                for token in rest.split_whitespace() {
                    // Tokens other than v= are ignored: forward compatibility.
                    if let Some(("v", value)) = token.split_once('=') {
                        version = Some(
                            value
                                .parse::<u32>()
                                .map_err(|_| format!("bad HELLO field {token:?}"))?,
                        );
                    }
                }
                match version {
                    Some(version) if version >= 1 => Ok(Response::Hello { version }),
                    _ => Err("HELLO missing v=<version>".into()),
                }
            }
            "ROWS" => {
                let mut rows = RowSet::default();
                let mut expected = None;
                let mut part: Option<(u32, u32)> = None;
                let mut cursor = None;
                for token in rest.split_whitespace() {
                    if let Some((key, value)) = token.split_once('=') {
                        match key {
                            "part" => {
                                let (i, m) = value.split_once('/').ok_or_else(|| {
                                    format!("bad ROWS part {token:?} (expected part=<i>/<m>)")
                                })?;
                                let i = i
                                    .parse::<u32>()
                                    .map_err(|_| format!("bad ROWS part {token:?}"))?;
                                let m = m
                                    .parse::<u32>()
                                    .map_err(|_| format!("bad ROWS part {token:?}"))?;
                                if i == 0 || m == 0 || i > m {
                                    return Err(format!("bad ROWS part {token:?}"));
                                }
                                part = Some((i, m));
                            }
                            "cursor" => cursor = Some(Cursor::parse(value)?),
                            _ => {
                                let int = value
                                    .parse::<u64>()
                                    .map_err(|_| format!("bad ROWS field {token:?}"))?;
                                match key {
                                    "k" => rows.k = int as usize,
                                    "us" => rows.micros = int,
                                    "cached" => rows.cached = int != 0,
                                    "n" => expected = Some(int as usize),
                                    _ => {} // ignore unknown fields: forward compatibility
                                }
                            }
                        }
                    } else if let Some((l, r)) = token.split_once(':') {
                        let pair = (
                            l.parse::<u32>()
                                .map_err(|_| format!("bad pair {token:?}"))?,
                            r.parse::<u32>()
                                .map_err(|_| format!("bad pair {token:?}"))?,
                        );
                        rows.pairs.push(pair);
                    } else {
                        return Err(format!("unexpected ROWS token {token:?}"));
                    }
                }
                match (part, expected) {
                    (Some((part, parts)), Some(total)) => Ok(Response::Chunk(RowChunk {
                        k: rows.k,
                        micros: rows.micros,
                        cached: rows.cached,
                        total,
                        part,
                        parts,
                        cursor,
                        pairs: rows.pairs,
                    })),
                    (Some(_), None) => Err("ROWS chunk missing n=<total>".into()),
                    (None, Some(n)) if n != rows.pairs.len() => Err(format!(
                        "ROWS claimed n={n} but carried {} pairs",
                        rows.pairs.len()
                    )),
                    (None, Some(_)) => Ok(Response::Rows(rows)),
                    (None, None) => Err("ROWS missing n=<count>".into()),
                }
            }
            "STATS" => {
                let mut s = ServerStats::default();
                for token in rest.split_whitespace() {
                    let (key, value) = token
                        .split_once('=')
                        .ok_or_else(|| format!("bad STATS field {token:?}"))?;
                    let int = value
                        .parse::<u64>()
                        .map_err(|_| format!("bad STATS field {token:?}"))?;
                    match key {
                        "connections" => s.connections = int,
                        "requests" => s.requests = int,
                        "errors" => s.errors = int,
                        "sessions" => s.sessions = int,
                        "relations" => s.relations = int,
                        "cache_hits" => s.cache_hits = int,
                        "cache_misses" => s.cache_misses = int,
                        "cache_evictions" => s.cache_evictions = int,
                        "cache_len" => s.cache_len = int,
                        "workers" => s.workers = int,
                        "dom_tests" => s.dom_tests = int,
                        "attr_cmps" => s.attr_cmps = int,
                        "domgen_us" => s.domgen_us = int,
                        "shed" => s.shed = int,
                        "reaped" => s.reaped = int,
                        "peak_buf" => s.peak_buf = int,
                        "fanout_queries" => s.fanout_queries = int,
                        "merge_us" => s.merge_us = int,
                        "shard_retries" => s.shard_retries = int,
                        "shard_errors" => s.shard_errors = int,
                        "catalog_epoch" => s.catalog_epoch = int,
                        "delta_maintained" => s.delta_maintained = int,
                        "delta_rows" => s.delta_rows = int,
                        "timeouts" => s.timeouts = int,
                        "wal_records" => s.wal_records = int,
                        "wal_segments" => s.wal_segments = int,
                        "panics" => s.panics = int,
                        _ => {} // forward compatibility
                    }
                }
                Ok(Response::Stats(s))
            }
            "CATALOG" => {
                let (count, rest) = split_word(rest);
                let n = count
                    .strip_prefix("n=")
                    .and_then(|v| v.parse::<usize>().ok())
                    .ok_or_else(|| format!("CATALOG needs n=<count>, got {count:?}"))?;
                // `key=value` tokens are header fields (epoch today, more
                // later — unknown ones skip for forward compatibility);
                // bare tokens are relation names. Pre-epoch servers send no
                // fields at all, which parses as epoch 0.
                let mut epoch = 0;
                let mut names = Vec::new();
                for token in rest.split_whitespace() {
                    match token.split_once('=') {
                        Some(("epoch", value)) => {
                            epoch = value
                                .parse::<u64>()
                                .map_err(|_| format!("bad CATALOG field {token:?}"))?;
                        }
                        Some(_) => {} // forward compatibility
                        None => names.push(token.to_string()),
                    }
                }
                if names.len() != n {
                    return Err(format!(
                        "CATALOG claimed n={n} but carried {} names",
                        names.len()
                    ));
                }
                Ok(Response::Catalog { epoch, names })
            }
            "RELATION" => {
                let (name, csv) = split_word(rest);
                validate_name("relation name", name)?;
                if csv.is_empty() {
                    return Err("RELATION needs CSV text".into());
                }
                Ok(Response::Relation {
                    name: name.into(),
                    csv: csv.replace(';', "\n"),
                })
            }
            "VALS" => {
                let (count, blob) = split_word(rest);
                let n = count
                    .strip_prefix("n=")
                    .and_then(|v| v.parse::<usize>().ok())
                    .ok_or_else(|| format!("VALS needs n=<count>, got {count:?}"))?;
                let rows = if blob.is_empty() {
                    Vec::new()
                } else {
                    parse_rows_blob(blob)?
                };
                if rows.len() != n {
                    return Err(format!(
                        "VALS claimed n={n} but carried {} rows",
                        rows.len()
                    ));
                }
                Ok(Response::Vals(rows))
            }
            "CHECKED" => {
                let (count, bits) = split_word(rest);
                let n = count
                    .strip_prefix("n=")
                    .and_then(|v| v.parse::<usize>().ok())
                    .ok_or_else(|| format!("CHECKED needs n=<count>, got {count:?}"))?;
                let bits: Vec<bool> = bits
                    .chars()
                    .map(|c| match c {
                        '0' => Ok(false),
                        '1' => Ok(true),
                        other => Err(format!("bad CHECKED bit {other:?}")),
                    })
                    .collect::<ProtoResult<_>>()?;
                if bits.len() != n {
                    return Err(format!(
                        "CHECKED claimed n={n} but carried {} bits",
                        bits.len()
                    ));
                }
                Ok(Response::Checked(bits))
            }
            "STAGED" => {
                let (count, rest) = split_word(rest);
                let n = count
                    .strip_prefix("n=")
                    .and_then(|v| v.parse::<usize>().ok())
                    .ok_or_else(|| format!("STAGED needs n=<count>, got {count:?}"))?;
                let names: Vec<String> = rest.split_whitespace().map(String::from).collect();
                if names.len() != n {
                    return Err(format!(
                        "STAGED claimed n={n} but carried {} names",
                        names.len()
                    ));
                }
                Ok(Response::Staged { names })
            }
            other => Err(format!("unknown response frame {other:?}")),
        }
    }
}

impl fmt::Display for Response {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Response::Ok(msg) => write!(f, "OK {}", one_line(msg)),
            Response::Error { code, message } => match code {
                // Legacy frames round-trip without inventing a code token.
                ErrorCode::Unknown => write!(f, "ERR {}", one_line(message)),
                code if message.is_empty() => write!(f, "ERR {code}"),
                code => write!(f, "ERR {code} {}", one_line(message)),
            },
            Response::Explain(text) => write!(f, "EXPLAIN {}", one_line(text)),
            Response::Bye => write!(f, "BYE"),
            Response::Hello { version } => write!(f, "HELLO v={version}"),
            Response::Rows(rows) => {
                write!(
                    f,
                    "ROWS k={} us={} cached={} n={}",
                    rows.k,
                    rows.micros,
                    rows.cached as u8,
                    rows.pairs.len()
                )?;
                for (l, r) in &rows.pairs {
                    write!(f, " {l}:{r}")?;
                }
                Ok(())
            }
            Response::Chunk(chunk) => {
                write!(
                    f,
                    "ROWS k={} us={} cached={} n={} part={}/{}",
                    chunk.k, chunk.micros, chunk.cached as u8, chunk.total, chunk.part, chunk.parts
                )?;
                if let Some(cursor) = chunk.cursor {
                    write!(f, " cursor={cursor}")?;
                }
                for (l, r) in &chunk.pairs {
                    write!(f, " {l}:{r}")?;
                }
                Ok(())
            }
            Response::Stats(s) => write!(
                f,
                "STATS connections={} requests={} errors={} sessions={} relations={} \
                 cache_hits={} cache_misses={} cache_evictions={} cache_len={} workers={} \
                 dom_tests={} attr_cmps={} domgen_us={} shed={} reaped={} peak_buf={} \
                 fanout_queries={} merge_us={} shard_retries={} shard_errors={} \
                 catalog_epoch={} delta_maintained={} delta_rows={} \
                 timeouts={} wal_records={} wal_segments={} panics={}",
                s.connections,
                s.requests,
                s.errors,
                s.sessions,
                s.relations,
                s.cache_hits,
                s.cache_misses,
                s.cache_evictions,
                s.cache_len,
                s.workers,
                s.dom_tests,
                s.attr_cmps,
                s.domgen_us,
                s.shed,
                s.reaped,
                s.peak_buf,
                s.fanout_queries,
                s.merge_us,
                s.shard_retries,
                s.shard_errors,
                s.catalog_epoch,
                s.delta_maintained,
                s.delta_rows,
                s.timeouts,
                s.wal_records,
                s.wal_segments,
                s.panics
            ),
            Response::Catalog { epoch, names } => {
                write!(f, "CATALOG n={} epoch={epoch}", names.len())?;
                for name in names {
                    write!(f, " {name}")?;
                }
                Ok(())
            }
            Response::Relation { name, csv } => {
                write!(f, "RELATION {name} {}", csv.trim_end().replace('\n', ";"))
            }
            Response::Vals(rows) => {
                write!(f, "VALS n={}", rows.len())?;
                if !rows.is_empty() {
                    write!(f, " {}", rows_blob(rows))?;
                }
                Ok(())
            }
            Response::Checked(bits) => {
                write!(f, "CHECKED n={}", bits.len())?;
                if !bits.is_empty() {
                    let text: String = bits.iter().map(|&b| if b { '1' } else { '0' }).collect();
                    write!(f, " {text}")?;
                }
                Ok(())
            }
            Response::Staged { names } => {
                write!(f, "STAGED n={}", names.len())?;
                for name in names {
                    write!(f, " {name}")?;
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ksjq_core::FindKStrategy;

    fn roundtrip_request(line: &str) -> Request {
        let req = Request::parse(line).unwrap();
        let reparsed = Request::parse(&req.to_string()).unwrap();
        assert_eq!(req, reparsed, "serialise/parse round trip of {line:?}");
        req
    }

    #[test]
    fn request_roundtrips() {
        let req = roundtrip_request("LOAD t1 INLINE city,cost;C,448;D,456");
        assert_eq!(
            req,
            Request::Load {
                name: "t1".into(),
                source: LoadSource::Inline {
                    csv: "city,cost\nC,448\nD,456".into()
                }
            }
        );
        let req = roundtrip_request("load r synthetic anti n=100 d=5 a=2 g=7 seed=3");
        assert_eq!(
            req,
            Request::Load {
                name: "r".into(),
                source: LoadSource::Synthetic(SyntheticSpec {
                    data_type: DataType::AntiCorrelated,
                    n: 100,
                    d: 5,
                    a: 2,
                    g: 7,
                    seed: 3
                })
            }
        );
        let req = roundtrip_request(
            "PREPARE q1 out JOIN in AGG sum,wsum(1,0.5) K 7 ALGO dominator-based KDOM osa",
        );
        match &req {
            Request::Prepare { id, plan } => {
                assert_eq!(id, "q1");
                assert_eq!(plan.goal, Goal::Exact(7));
                assert_eq!(plan.aggs.len(), 2);
                assert_eq!(plan.algorithm, Algorithm::DominatorBased);
                assert_eq!(plan.kdom, Some(KdomAlgo::Osa));
            }
            other => panic!("{other:?}"),
        }
        roundtrip_request("QUERY a JOIN b GOAL atleast:10:range");
        roundtrip_request("EXECUTE q1");
        roundtrip_request("EXPLAIN q1");
        roundtrip_request("STATS");
        roundtrip_request("CLOSE");
        assert_eq!(
            roundtrip_request("DEADLINE 1500"),
            Request::Deadline { ms: 1500 }
        );
        assert_eq!(roundtrip_request("deadline 0"), Request::Deadline { ms: 0 });
        for bad in ["DEADLINE", "DEADLINE soon", "DEADLINE 5 extra"] {
            assert!(Request::parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn v2_request_roundtrips() {
        assert_eq!(roundtrip_request("HELLO 2"), Request::Hello { version: 2 });
        assert_eq!(roundtrip_request("hello 1"), Request::Hello { version: 1 });
        assert_eq!(
            roundtrip_request("MORE 42:3"),
            Request::More {
                cursor: Cursor {
                    result: 42,
                    part: 3
                }
            }
        );
        for bad in [
            "HELLO",
            "HELLO zero",
            "HELLO 0",
            "HELLO 2 trailing",
            "MORE",
            "MORE 42",
            "MORE 42:0",
            "MORE 42:three",
            "MORE 42:3 trailing",
            "MORE :3",
        ] {
            assert!(Request::parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn synthetic_defaults_and_validation() {
        let req = roundtrip_request("LOAD r SYNTHETIC ind n=50 d=4");
        match req {
            Request::Load {
                source: LoadSource::Synthetic(s),
                ..
            } => {
                assert_eq!((s.a, s.g, s.seed), (0, 10, 42));
                assert_eq!(s.dataset_spec().local_attrs, 4);
            }
            other => panic!("{other:?}"),
        }
        for bad in [
            "LOAD r SYNTHETIC ind d=4",          // missing n
            "LOAD r SYNTHETIC ind n=10",         // missing d
            "LOAD r SYNTHETIC ind n=0 d=4",      // n = 0
            "LOAD r SYNTHETIC ind n=10 d=2 a=3", // a > d
            "LOAD r SYNTHETIC ind n=10 d=2 g=0", // g = 0
            "LOAD r SYNTHETIC bogus n=10 d=2",   // unknown distribution
            "LOAD r SYNTHETIC ind n=ten d=2",    // non-integer
        ] {
            assert!(Request::parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn request_parse_rejects_junk() {
        for bad in [
            "",
            "   ",
            "FROBNICATE",
            "LOAD",
            "LOAD name",
            "LOAD name TELEPATHY",
            "LOAD na me INLINE a,b;1,2",
            "PREPARE q1 left RIGHT right",
            "PREPARE q1 left JOIN right K seven",
            "PREPARE q1 left JOIN right WAT 3",
            "QUERY only JOIN",
            "EXECUTE",
            "EXECUTE q1 trailing",
            "STATS now",
            "CLOSE please",
        ] {
            assert!(Request::parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn plan_keywords_are_order_insensitive_for_fingerprints() {
        let a = match Request::parse("QUERY l JOIN r KDOM tsa K 7 AGG sum").unwrap() {
            Request::Query { plan } => plan,
            other => panic!("{other:?}"),
        };
        let b = match Request::parse("query l join r agg sum goal exact:7 kdom tsa").unwrap() {
            Request::Query { plan } => plan,
            other => panic!("{other:?}"),
        };
        assert_eq!(a, b);
        assert_eq!(a.fingerprint(), b.fingerprint());
        // Different kdom, different fingerprint.
        let c = a.clone().kdom(KdomAlgo::Osa);
        assert_ne!(a.fingerprint(), c.fingerprint());
    }

    #[test]
    fn response_roundtrips() {
        let responses = [
            Response::Ok("loaded t1 n=9 d=4".into()),
            Response::Rows(RowSet {
                k: 7,
                micros: 123,
                cached: true,
                pairs: vec![(0, 2), (2, 0), (4, 4)],
            }),
            Response::Rows(RowSet::default()),
            Response::Explain("grouping k=7 over \"a\" ⋈ \"b\" [equality]".into()),
            Response::Stats(ServerStats {
                connections: 1,
                requests: 10,
                errors: 2,
                sessions: 3,
                relations: 4,
                cache_hits: 5,
                cache_misses: 6,
                cache_evictions: 7,
                cache_len: 8,
                workers: 9,
                dom_tests: 10,
                attr_cmps: 11,
                domgen_us: 12,
                shed: 13,
                reaped: 14,
                peak_buf: 15,
                fanout_queries: 16,
                merge_us: 17,
                shard_retries: 18,
                shard_errors: 19,
                catalog_epoch: 20,
                delta_maintained: 21,
                delta_rows: 22,
                timeouts: 23,
                wal_records: 24,
                wal_segments: 25,
                panics: 26,
            }),
            Response::err(ErrorCode::Invalid, "unknown relation \"nope\""),
            Response::err(ErrorCode::Timeout, "query deadline exceeded"),
            Response::err(ErrorCode::Busy, ""),
            // Legacy ERR frames (no recognised code token) still round-trip.
            Response::err(ErrorCode::Unknown, "something went sideways"),
            Response::Bye,
        ];
        for resp in responses {
            let line = resp.to_string();
            assert!(!line.contains('\n'), "{line:?}");
            assert_eq!(Response::parse(&line).unwrap(), resp, "{line:?}");
        }
    }

    #[test]
    fn response_payloads_cannot_break_framing() {
        let evil = Response::err(ErrorCode::Internal, "two\nlines\r\nhere");
        let line = evil.to_string();
        assert!(!line.contains('\n') && !line.contains('\r'));
        assert!(matches!(
            Response::parse(&line).unwrap(),
            Response::Error { .. }
        ));
    }

    #[test]
    fn error_codes_roundtrip_and_fall_back() {
        for code in [
            ErrorCode::Busy,
            ErrorCode::Timeout,
            ErrorCode::Unavailable,
            ErrorCode::Parse,
            ErrorCode::Recovering,
            ErrorCode::Invalid,
            ErrorCode::Internal,
        ] {
            assert_eq!(ErrorCode::from_token(code.token()), Some(code));
            let parsed = Response::parse(&format!("ERR {code} detail here")).unwrap();
            assert_eq!(parsed, Response::err(code, "detail here"));
        }
        // A frame from an older peer: the first word is not a code, so the
        // whole text survives as the message.
        assert_eq!(
            Response::parse("ERR unknown relation \"nope\"").unwrap(),
            Response::err(ErrorCode::Unknown, "unknown relation \"nope\"")
        );
        assert!(ErrorCode::Busy.is_transient());
        assert!(ErrorCode::Recovering.is_transient());
        assert!(!ErrorCode::Invalid.is_transient());
    }

    #[test]
    fn response_parse_rejects_junk() {
        for bad in [
            "WAT 3",
            "ROWS k=7 us=1 cached=0 n=2 0:1", // count mismatch
            "ROWS k=7 us=1 cached=0",         // missing n
            "ROWS n=1 zero:one",
            "STATS requests",
            "STATS requests=many",
            "HELLO",                            // missing v=
            "HELLO v=0",                        // versions are ≥ 1
            "HELLO v=two",                      // non-integer
            "ROWS part=1/2 0:1",                // chunk missing n=
            "ROWS n=5 part=0/2",                // parts are 1-based
            "ROWS n=5 part=3/2",                // part beyond parts
            "ROWS n=5 part=12",                 // malformed part
            "ROWS n=5 part=1/2 cursor=8:0 0:1", // cursor parts are 1-based
            "ROWS n=5 part=1/2 cursor=8 0:1",   // malformed cursor
        ] {
            assert!(Response::parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn chunk_responses_roundtrip() {
        let chunks = [
            Response::Chunk(RowChunk {
                k: 7,
                micros: 200,
                cached: false,
                total: 5000,
                part: 2,
                parts: 3,
                cursor: Some(Cursor { result: 8, part: 3 }),
                pairs: vec![(0, 1), (4, 2)],
            }),
            // Final part: no cursor.
            Response::Chunk(RowChunk {
                k: 7,
                micros: 0,
                cached: true,
                total: 5000,
                parts: 3,
                part: 3,
                cursor: None,
                pairs: vec![(9, 9)],
            }),
            // Empty result: one empty part.
            Response::Chunk(RowChunk {
                k: 2,
                micros: 11,
                cached: false,
                total: 0,
                part: 1,
                parts: 1,
                cursor: None,
                pairs: vec![],
            }),
        ];
        for resp in chunks {
            let line = resp.to_string();
            assert!(!line.contains('\n'), "{line:?}");
            assert_eq!(Response::parse(&line).unwrap(), resp, "{line:?}");
        }
        // A v1 ROWS frame (no part=) still parses as Response::Rows.
        assert!(matches!(
            Response::parse("ROWS k=7 us=1 cached=0 n=1 3:4").unwrap(),
            Response::Rows(_)
        ));
        // Hello frames round-trip and tolerate unknown fields.
        let hello = Response::Hello { version: 2 };
        assert_eq!(Response::parse(&hello.to_string()).unwrap(), hello);
        assert_eq!(
            Response::parse("HELLO v=2 server=ksjq").unwrap(),
            Response::Hello { version: 2 }
        );
    }

    /// The arithmetic behind the ≤ 64 KiB frame guarantee: a chunk of
    /// [`ROWS_PER_CHUNK`] worst-case pairs (two ten-digit ids each) plus a
    /// worst-case header must serialise under [`MAX_ROWS_FRAME_BYTES`],
    /// newline included.
    #[test]
    fn worst_case_chunk_frame_fits() {
        let frame = Response::Chunk(RowChunk {
            k: usize::MAX,
            micros: u64::MAX,
            cached: true,
            total: usize::MAX,
            part: u32::MAX - 1,
            parts: u32::MAX,
            cursor: Some(Cursor {
                result: u64::MAX,
                part: u32::MAX,
            }),
            pairs: vec![(u32::MAX, u32::MAX); ROWS_PER_CHUNK],
        })
        .to_string();
        // +1 for the trailing newline the wire adds to every frame.
        assert!(
            frame.len() < MAX_ROWS_FRAME_BYTES,
            "worst-case chunk frame is {} bytes",
            frame.len() + 1
        );
    }

    #[test]
    fn goal_tokens_cover_all_goals() {
        for goal in [
            Goal::Exact(6),
            Goal::SkylineJoin,
            Goal::AtLeast(10, FindKStrategy::Range),
            Goal::AtMost(3, FindKStrategy::Naive),
        ] {
            let token = goal_token(goal);
            assert!(!token.contains(char::is_whitespace), "{token:?}");
            assert_eq!(token.parse::<Goal>().unwrap(), goal);
        }
    }

    #[test]
    fn distribution_request_roundtrips() {
        assert_eq!(roundtrip_request("SYNC"), Request::Sync { name: None });
        assert_eq!(
            roundtrip_request("sync outbound"),
            Request::Sync {
                name: Some("outbound".into())
            }
        );
        assert_eq!(
            roundtrip_request("STAGE t1 INLINE city,cost;C,448"),
            Request::Stage {
                name: "t1".into(),
                csv: "city,cost\nC,448".into()
            }
        );
        // A header-only CSV stages an empty relation.
        assert_eq!(
            roundtrip_request("STAGE t1 INLINE city,cost"),
            Request::Stage {
                name: "t1".into(),
                csv: "city,cost".into()
            }
        );
        assert_eq!(
            roundtrip_request("COMMIT t1"),
            Request::Commit { name: "t1".into() }
        );
        assert_eq!(
            roundtrip_request("ABORT t1"),
            Request::Abort { name: "t1".into() }
        );
        assert_eq!(roundtrip_request("STAGED?"), Request::StagedQuery);
        assert_eq!(roundtrip_request("staged?"), Request::StagedQuery);
        assert_eq!(
            roundtrip_request("FETCH a JOIN b PAIRS 0:1;4:2"),
            Request::Fetch {
                left: "a".into(),
                right: "b".into(),
                aggs: vec![],
                pairs: vec![(0, 1), (4, 2)]
            }
        );
        assert_eq!(
            roundtrip_request("FETCH a JOIN b AGG sum,min PAIRS 7:7"),
            Request::Fetch {
                left: "a".into(),
                right: "b".into(),
                aggs: vec![AggFunc::Sum, AggFunc::Min],
                pairs: vec![(7, 7)]
            }
        );
        assert_eq!(
            roundtrip_request("CHECK a JOIN b K 5 ROWS 1,2.5,-3;4,0.125,6"),
            Request::Check {
                left: "a".into(),
                right: "b".into(),
                aggs: vec![],
                k: 5,
                rows: vec![vec![1.0, 2.5, -3.0], vec![4.0, 0.125, 6.0]]
            }
        );
        roundtrip_request("CHECK a JOIN b AGG wsum(1,0.5) K 9 ROWS 0.1,0.2");
        assert_eq!(
            roundtrip_request("APPEND t1 ROWS C,448,3;D,456,2"),
            Request::Append {
                name: "t1".into(),
                rows: "C,448,3\nD,456,2".into(),
                staged: false
            }
        );
        assert_eq!(
            roundtrip_request("append t1 stage C,448,3"),
            Request::Append {
                name: "t1".into(),
                rows: "C,448,3".into(),
                staged: true
            }
        );
        assert_eq!(
            roundtrip_request("DELETE t1 KEYS C,D"),
            Request::Delete {
                name: "t1".into(),
                keys: vec!["C".into(), "D".into()]
            }
        );
        for bad in [
            "SYNC a b",
            "SYNC bad;name",
            "STAGE",
            "STAGE t1",
            "STAGE t1 TELEPATHY a,b",
            "STAGE t1 INLINE",
            "COMMIT",
            "COMMIT t1 trailing",
            "ABORT",
            "STAGED? t1",
            "FETCH a JOIN b",           // missing PAIRS
            "FETCH a JOIN b PAIRS",     // PAIRS needs a value
            "FETCH a JOIN b PAIRS 0",   // not l:r
            "FETCH a JOIN b PAIRS 0:x", // non-integer
            "FETCH a JOIN b WAT 3 PAIRS 0:1",
            "CHECK a JOIN b ROWS 1,2", // missing K
            "CHECK a JOIN b K 5",      // missing ROWS
            "CHECK a JOIN b K five ROWS 1",
            "CHECK a JOIN b K 5 ROWS 1,x",   // non-numeric value
            "CHECK a JOIN b K 5 ROWS 1,inf", // non-finite value
            "CHECK a JOIN b K 5 ROWS 1,NaN",
            "CHECK a JOIN b K 5 ROWS 1,2;;3,4", // empty row
            "APPEND",                           // missing name
            "APPEND t1",                        // missing mode
            "APPEND t1 TELEPATHY C,448",        // unknown mode
            "APPEND t1 ROWS",                   // ROWS needs rows
            "APPEND t1 STAGE",                  // STAGE needs rows
            "DELETE",                           // missing name
            "DELETE t1",                        // missing KEYS
            "DELETE t1 KEYS",                   // KEYS needs a list
            "DELETE t1 KEYS C,",                // empty key
            "DELETE t1 KEYS C D",               // trailing input
        ] {
            assert!(Request::parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn distribution_response_roundtrips() {
        let responses = [
            Response::Catalog {
                epoch: 0,
                names: vec![],
            },
            Response::Catalog {
                epoch: 42,
                names: vec!["inbound".into(), "outbound".into()],
            },
            Response::Relation {
                name: "outbound".into(),
                csv: "city,cost:min\nC,448\nD,456".into(),
            },
            Response::Vals(vec![]),
            Response::Vals(vec![vec![1.5, -2.0, 3.0], vec![0.0625, 4.0, 5.0]]),
            Response::Checked(vec![]),
            Response::Checked(vec![true, false, true]),
            Response::Staged { names: vec![] },
            Response::Staged {
                names: vec![".all.t1".into(), "t1".into()],
            },
        ];
        for resp in responses {
            let line = resp.to_string();
            assert!(!line.contains('\n'), "{line:?}");
            assert_eq!(Response::parse(&line).unwrap(), resp, "{line:?}");
        }
        // Pre-epoch servers send no epoch= field: parses as epoch 0.
        assert_eq!(
            Response::parse("CATALOG n=1 flights").unwrap(),
            Response::Catalog {
                epoch: 0,
                names: vec!["flights".into()],
            }
        );
        for bad in [
            "CATALOG",                // missing n=
            "CATALOG n=2 only",       // count mismatch
            "CATALOG n=x",            // non-integer
            "CATALOG n=0 epoch=huge", // non-integer epoch
            "RELATION",               // missing name
            "RELATION name",          // missing csv
            "VALS",                   // missing n=
            "VALS n=1",               // count mismatch
            "VALS n=1 1,2;3,4",       // count mismatch
            "VALS n=1 1,zebra",       // non-numeric
            "CHECKED",                // missing n=
            "CHECKED n=2 1",          // count mismatch
            "CHECKED n=1 2",          // not a bit
            "STAGED",                 // missing n=
            "STAGED n=2 only",        // count mismatch
        ] {
            assert!(Response::parse(bad).is_err(), "{bad:?} should not parse");
        }
        // f64 Display is shortest-exact: values survive the wire bit-for-bit.
        let vals = Response::Vals(vec![vec![0.1 + 0.2, 1.0 / 3.0, -1e-300, 1e300]]);
        assert_eq!(Response::parse(&vals.to_string()).unwrap(), vals);
    }

    #[test]
    fn plan_spec_to_plan_carries_everything() {
        let spec = PlanSpec::new("l", "r")
            .aggs(&[AggFunc::Sum])
            .k(7)
            .algorithm(Algorithm::Naive)
            .kdom(KdomAlgo::TsaPresort);
        let plan = spec.to_plan();
        assert_eq!(plan.goal, Goal::Exact(7));
        assert_eq!(plan.algorithm, Algorithm::Naive);
        assert_eq!(plan.kdom, Some(KdomAlgo::TsaPresort));
        assert_eq!(plan.funcs, vec![AggFunc::Sum]);
    }
}
