//! Incremental maintenance of k-dominant skyline join results under
//! appends.
//!
//! Given a cached [`KsjqOutput`] computed at epoch `E` and a
//! [`JoinContext`] over the epoch-`E+1` relations — where the delta is an
//! **append**: the first `old_left_n` / `old_right_n` rows of each side
//! are bit-identical to epoch `E` and the remainder is new —
//! [`maintain_append`] produces the epoch-`E+1` result without a full
//! recompute. The output is byte-identical to re-running any of the KSJQ
//! algorithms from scratch (the property suite enforces this), because
//! the epoch-`E` result pins down everything about the old pairs:
//!
//! * An old pair absent from the cache was k-dominated at `E`; its
//!   dominator's values are unchanged, so it stays dominated — never a
//!   candidate.
//! * An old pair in the cache had no dominator at `E`; at `E+1` it can
//!   only be k-dominated by a joined tuple with at least one **new**
//!   leg. In an equality join every such tuple's left leg is either a
//!   new left row or an old left row whose group gained a new *right*
//!   row, so re-checking the cached pair against the target-filtered
//!   members of that (delta-sized) leg set via the existing
//!   [`ColumnarCheck`] is a complete test — and costs `O(|Δ|)` per
//!   cached pair instead of a full target-set scan of the left relation.
//! * A new pair (at least one new leg) is an ordinary candidate: it
//!   survives iff no joined tuple k-dominates it, verified with the same
//!   target-set + split-side check the distributed `CHECK` path uses.
//!
//! Deletes are *not* maintained incrementally: removing a row shifts the
//! ids of every later row and can resurrect previously dominated pairs,
//! so the caller recomputes (see the server's maintenance-vs-recompute
//! decision, documented in the README's "Live catalogs" section).

use crate::error::{CoreError, CoreResult};
use crate::output::{finish, KsjqOutput};
use crate::params::validate_k;
use crate::stats::ExecStats;
use crate::target::{attr_sums, order_by_attr_sum, target_set_for_values, TargetScratch};
use crate::verify::{CheckCounters, ColumnarCheck};
use ksjq_join::{JoinContext, JoinSpec};
use std::collections::HashSet;
use std::time::Instant;

/// Work accounting of one [`maintain_append`] call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MaintainStats {
    /// New-leg join pairs verified as skyline candidates.
    pub candidates_checked: usize,
    /// Cached pairs re-verified against new-leg dominators (cached pairs
    /// whose filtered target set was empty are kept without a check).
    pub cached_rechecked: usize,
    /// Cached pairs evicted because a new-leg joined tuple k-dominates
    /// them.
    pub cached_evicted: usize,
    /// New-leg pairs admitted into the result.
    pub inserted: usize,
    /// Verification-kernel work counters.
    pub counters: CheckCounters,
}

/// Can results over this join be maintained incrementally? Only equality
/// joins: the affected-group argument above needs "a new row only joins
/// within its own group".
pub fn can_maintain(cx: &JoinContext<'_>) -> bool {
    matches!(cx.spec(), JoinSpec::Equality)
}

/// Maintain `cached` (the epoch-`E` result for `(cx', k)`) into the
/// epoch-`E+1` result for `(cx, k)`, where `cx` is over the appended
/// relations and the first `old_left_n` / `old_right_n` rows of each side
/// are unchanged from epoch `E`.
///
/// Returns the new output — byte-identical (same sorted pair sequence) to
/// a from-scratch recompute — plus maintenance work stats. Errors on
/// non-equality joins, invalid `k`, or old row counts exceeding the
/// current relations.
pub fn maintain_append(
    cx: &JoinContext<'_>,
    k: usize,
    cached: &KsjqOutput,
    old_left_n: usize,
    old_right_n: usize,
) -> CoreResult<(KsjqOutput, MaintainStats)> {
    if !can_maintain(cx) {
        return Err(CoreError::Relation(ksjq_relation::Error::Invalid(
            "incremental maintenance requires an equality join".into(),
        )));
    }
    let params = validate_k(cx, k)?;
    let (left, right) = (cx.left(), cx.right());
    if old_left_n > left.n() || old_right_n > right.n() {
        return Err(CoreError::Relation(ksjq_relation::Error::Invalid(format!(
            "old row counts ({old_left_n}, {old_right_n}) exceed current ({}, {})",
            left.n(),
            right.n()
        ))));
    }
    let started = Instant::now();
    let mut stats = MaintainStats::default();

    // New-leg candidate pairs: every join partner of a new row. Pairs
    // where both legs are new appear once (the right-side sweep skips
    // them).
    let mut candidates: Vec<(u32, u32)> = Vec::new();
    for u in old_left_n as u32..left.n() as u32 {
        for &v in cx.right_partners(u) {
            candidates.push((u, v));
        }
    }
    for v in old_right_n as u32..right.n() as u32 {
        for &u in cx.left_partners(v) {
            if (u as usize) < old_left_n {
                candidates.push((u, v));
            }
        }
    }

    // Left legs that can head a *new* joined tuple: every new left row,
    // plus every old left row whose group gained a new right row (its
    // pairs with old right rows all existed at epoch `E`, so the cached
    // result already survived them). Rechecking a cached pair only needs
    // the target-filter members of this delta-sized set — not a full
    // target-set scan of the left relation per pair.
    let mut right_affected: HashSet<u64> = HashSet::new();
    for v in old_right_n..right.n() {
        if let Some(g) = right.group_id(ksjq_relation::TupleId(v as u32)) {
            right_affected.insert(g);
        }
    }
    let mut dominator_legs: Vec<u32> = (old_left_n as u32..left.n() as u32).collect();
    if !right_affected.is_empty() {
        for t in 0..old_left_n as u32 {
            if left
                .group_id(ksjq_relation::TupleId(t))
                .is_some_and(|g| right_affected.contains(&g))
            {
                dominator_legs.push(t);
            }
        }
    }

    let locals = cx.left_local_attrs();
    let scores = attr_sums(left);
    let mut checker = ColumnarCheck::new(cx, k);
    let mut scratch = TargetScratch::default();
    let mut pairs: Vec<(u32, u32)> = Vec::with_capacity(cached.len() + candidates.len());

    // Re-verify cached pairs against new-leg dominators only. The filter
    // below is the target-set membership test of `target_set_for_values`
    // (probe position `i` holds the joined row's `locals[i]` value)
    // restricted to the dominator legs.
    for &(u, v) in &cached.pairs {
        if dominator_legs.is_empty() {
            pairs.push((u.0, v.0));
            continue;
        }
        let row = cx.joined_row(u.0, v.0);
        let mut targets: Vec<u32> = dominator_legs
            .iter()
            .copied()
            .filter(|&t| {
                let x = left.row_at(t as usize);
                let le = locals
                    .iter()
                    .enumerate()
                    .filter(|&(i, &attr)| x[attr] <= row[i])
                    .count();
                le >= params.k1_pp
            })
            .collect();
        if targets.is_empty() {
            pairs.push((u.0, v.0));
            continue;
        }
        order_by_attr_sum(&mut targets, &scores);
        stats.cached_rechecked += 1;
        if checker.dominated_via_left(&targets, &row) {
            stats.cached_evicted += 1;
        } else {
            pairs.push((u.0, v.0));
        }
    }

    // Verify each new-leg candidate against the full joined relation.
    for &(u, v) in &candidates {
        let row = cx.joined_row(u, v);
        let mut targets =
            target_set_for_values(left, locals, &row[..cx.l1()], params.k1_pp, &mut scratch);
        order_by_attr_sum(&mut targets, &scores);
        stats.candidates_checked += 1;
        if !checker.dominated_via_left(&targets, &row) {
            pairs.push((u, v));
            stats.inserted += 1;
        }
    }

    stats.counters = checker.counters();
    let mut exec = ExecStats::default();
    exec.counts.dom_tests = stats.counters.dom_tests;
    exec.counts.attr_cmps = stats.counters.attr_cmps;
    exec.counts.targets_pruned = stats.counters.targets_pruned;
    exec.counts.joined_pairs = cx.count_pairs();
    exec.phases.remaining = started.elapsed();
    Ok((finish(pairs, exec), stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;
    use crate::grouping::ksjq_grouping;
    use ksjq_join::{AggFunc, JoinSpec};
    use ksjq_relation::{Relation, Schema};

    fn lcg(state: &mut u64, m: u64) -> u64 {
        *state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (*state >> 33) % m
    }

    fn grown(seed: u64, n: usize, groups: u64, d: usize) -> (Vec<u64>, Vec<Vec<f64>>) {
        let mut state = seed;
        let keys = (0..n).map(|_| lcg(&mut state, groups)).collect();
        let rows = (0..n)
            .map(|_| (0..d).map(|_| lcg(&mut state, 9) as f64).collect())
            .collect();
        (keys, rows)
    }

    /// Maintained output must equal full recompute pairs for random data
    /// across delta sizes, with and without aggregates.
    #[test]
    fn maintained_equals_recompute() {
        for (a, funcs) in [(0usize, vec![]), (1, vec![AggFunc::Sum])] {
            let d = 3;
            let schema = Schema::uniform_agg(a, d - a).unwrap();
            let (lk, lr) = grown(7 + a as u64, 60, 4, d);
            let (rk, rr) = grown(99 + a as u64, 60, 4, d);
            for delta in [1usize, 5, 20] {
                let old_n = 60 - delta;
                let old_left =
                    Relation::from_grouped_rows(schema.clone(), &lk[..old_n], &lr[..old_n])
                        .unwrap();
                let right = Relation::from_grouped_rows(schema.clone(), &rk, &rr).unwrap();
                let new_left = Relation::from_grouped_rows(schema.clone(), &lk, &lr).unwrap();
                let old_cx =
                    JoinContext::new(&old_left, &right, JoinSpec::Equality, &funcs).unwrap();
                let new_cx =
                    JoinContext::new(&new_left, &right, JoinSpec::Equality, &funcs).unwrap();
                let k = new_cx.d_joined() - 1;
                let cfg = Config::default();
                let cached = ksjq_grouping(&old_cx, k, &cfg).unwrap();
                let (maintained, mstats) =
                    maintain_append(&new_cx, k, &cached, old_n, right.n()).unwrap();
                let fresh = ksjq_grouping(&new_cx, k, &cfg).unwrap();
                assert_eq!(maintained.pairs, fresh.pairs, "a={a} delta={delta}");
                assert!(mstats.candidates_checked > 0, "a={a} delta={delta}");
            }
        }
    }

    /// Appends on both sides at once (the self-join-ish worst case for
    /// the candidate sweep) must also match recompute.
    #[test]
    fn double_sided_append_matches_recompute() {
        let d = 3;
        let schema = Schema::uniform(d).unwrap();
        let (lk, lr) = grown(1, 50, 3, d);
        let (rk, rr) = grown(2, 50, 3, d);
        let (oln, orn) = (44, 47);
        let old_left = Relation::from_grouped_rows(schema.clone(), &lk[..oln], &lr[..oln]).unwrap();
        let old_right =
            Relation::from_grouped_rows(schema.clone(), &rk[..orn], &rr[..orn]).unwrap();
        let new_left = Relation::from_grouped_rows(schema.clone(), &lk, &lr).unwrap();
        let new_right = Relation::from_grouped_rows(schema.clone(), &rk, &rr).unwrap();
        let old_cx = JoinContext::new(&old_left, &old_right, JoinSpec::Equality, &[]).unwrap();
        let new_cx = JoinContext::new(&new_left, &new_right, JoinSpec::Equality, &[]).unwrap();
        let cfg = Config::default();
        for k in (new_cx.d1().max(new_cx.d2()) + 1)..=new_cx.d_joined() {
            let cached = ksjq_grouping(&old_cx, k, &cfg).unwrap();
            let (maintained, _) = maintain_append(&new_cx, k, &cached, oln, orn).unwrap();
            let fresh = ksjq_grouping(&new_cx, k, &cfg).unwrap();
            assert_eq!(maintained.pairs, fresh.pairs, "k={k}");
        }
    }

    /// An empty delta returns exactly the cached pairs and does no
    /// candidate work.
    #[test]
    fn empty_delta_is_a_noop() {
        let d = 3;
        let schema = Schema::uniform(d).unwrap();
        let (lk, lr) = grown(5, 30, 3, d);
        let (rk, rr) = grown(6, 30, 3, d);
        let left = Relation::from_grouped_rows(schema.clone(), &lk, &lr).unwrap();
        let right = Relation::from_grouped_rows(schema, &rk, &rr).unwrap();
        let cx = JoinContext::new(&left, &right, JoinSpec::Equality, &[]).unwrap();
        let k = cx.d_joined();
        let cached = ksjq_grouping(&cx, k, &Config::default()).unwrap();
        let (maintained, stats) = maintain_append(&cx, k, &cached, 30, 30).unwrap();
        assert_eq!(maintained.pairs, cached.pairs);
        assert_eq!(stats.candidates_checked, 0);
        assert_eq!(stats.cached_rechecked, 0);
        assert_eq!(stats.cached_evicted, 0);
    }

    /// Guard rails: non-equality joins and bad old counts are rejected.
    #[test]
    fn rejects_theta_join_and_bad_counts() {
        let schema = Schema::uniform(2).unwrap();
        let mut b = Relation::builder(schema.clone());
        b.add_keyed(1.0, &[1.0, 2.0]).unwrap();
        let r1 = b.build().unwrap();
        let mut b = Relation::builder(schema.clone());
        b.add_keyed(2.0, &[3.0, 4.0]).unwrap();
        let r2 = b.build().unwrap();
        let cx = JoinContext::new(&r1, &r2, JoinSpec::Theta(ksjq_join::ThetaOp::Lt), &[]).unwrap();
        assert!(!can_maintain(&cx));
        let cached = KsjqOutput {
            pairs: vec![],
            stats: ExecStats::default(),
        };
        assert!(maintain_append(&cx, 3, &cached, 1, 1).is_err());

        let (lk, lr) = grown(8, 10, 2, 2);
        let left = Relation::from_grouped_rows(schema.clone(), &lk, &lr).unwrap();
        let right = Relation::from_grouped_rows(schema, &lk, &lr).unwrap();
        let eq = JoinContext::new(&left, &right, JoinSpec::Equality, &[]).unwrap();
        assert!(can_maintain(&eq));
        assert!(maintain_append(&eq, 3, &cached, 11, 10).is_err());
    }
}
