//! The dominance comparison kernel.
//!
//! Everything in this module operates on *normalised* attribute slices
//! (lower is better in every position — see [`crate::Preference`]).
//!
//! Definitions (paper Sec. 2):
//!
//! * `u` **dominates** `v` (`u ≻ v`) iff `u[i] ≤ v[i]` for all `i` and
//!   `u[j] < v[j]` for at least one `j`.
//! * `u` ***k*-dominates** `v` (`u ≻ₖ v`) iff `u[i] ≤ v[i]` in at least `k`
//!   positions and `u[j] < v[j]` in at least one position.
//!
//! The second definition is stated in the paper as "better or equal in at
//! least *k* attributes and strictly better in at least one"; because a
//! strictly-better attribute is always also a better-or-equal attribute, this
//! is equivalent to Chan et al.'s original formulation (strictly better in at
//! least one *of the k*): whenever `|{i : u_i ≤ v_i}| ≥ k` and a strict
//! attribute exists, a k-subset containing the strict attribute exists too.
//!
//! These functions are the hottest code in the workspace; they are written
//! as simple branch-light loops over slices so LLVM can vectorise the
//! counting and so callers can rely on early abandonment.

/// The `≤` / `<` position counts between two equal-length tuples.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DomCounts {
    /// Number of positions where `u[i] <= v[i]`.
    pub le: u32,
    /// Number of positions where `u[i] < v[i]`.
    pub lt: u32,
}

impl DomCounts {
    /// Combine counts from two disjoint attribute segments (e.g. the two
    /// halves of a joined tuple).
    #[inline]
    pub fn merge(self, other: DomCounts) -> DomCounts {
        DomCounts {
            le: self.le + other.le,
            lt: self.lt + other.lt,
        }
    }

    /// Does a tuple with these counts (out of `d` attributes total)
    /// k-dominate the other tuple?
    #[inline]
    pub fn k_dominates(self, k: usize) -> bool {
        self.le as usize >= k && self.lt >= 1
    }

    /// Does a tuple with these counts fully dominate the other (requires the
    /// total attribute count `d`)?
    #[inline]
    pub fn dominates(self, d: usize) -> bool {
        self.le as usize == d && self.lt >= 1
    }
}

/// Count the `≤` and `<` positions of `u` versus `v`.
///
/// # Panics
///
/// Debug builds assert the slices have equal length; release builds iterate
/// over the shorter one.
#[inline]
pub fn dom_counts(u: &[f64], v: &[f64]) -> DomCounts {
    debug_assert_eq!(
        u.len(),
        v.len(),
        "dominance between tuples of unequal arity"
    );
    let mut le = 0u32;
    let mut lt = 0u32;
    for (a, b) in u.iter().zip(v.iter()) {
        le += (a <= b) as u32;
        lt += (a < b) as u32;
    }
    DomCounts { le, lt }
}

/// Full (Pareto) dominance: `u ≻ v`.
///
/// Early-exits on the first position where `u` is worse.
#[inline]
pub fn dominates(u: &[f64], v: &[f64]) -> bool {
    debug_assert_eq!(u.len(), v.len());
    let mut strict = false;
    for (a, b) in u.iter().zip(v.iter()) {
        if a > b {
            return false;
        }
        strict |= a < b;
    }
    strict
}

/// *k*-dominance: `u ≻ₖ v`.
///
/// Early-abandons as soon as the remaining positions cannot lift the `≤`
/// count to `k` any more, which matters in the anti-correlated workloads
/// where most comparisons fail.
#[inline]
pub fn k_dominates(u: &[f64], v: &[f64], k: usize) -> bool {
    debug_assert_eq!(u.len(), v.len());
    let d = u.len();
    if k > d {
        return false;
    }
    let mut le = 0usize;
    let mut lt = false;
    for i in 0..d {
        let (a, b) = (u[i], v[i]);
        le += (a <= b) as usize;
        lt |= a < b;
        // Even if every remaining position were `<=`, we could not reach k.
        if le + (d - i - 1) < k {
            return false;
        }
    }
    le >= k && lt
}

/// Count the `≤` / `<` positions of one attribute *segment*: `u`'s
/// attributes at `attrs` versus the dense slice `v` (`v[i]` pairs with
/// `u[attrs[i]]`).
///
/// This is the split-side half of a joined-tuple dominance test: a joined
/// vector lays out `[left locals…, right locals…, aggregates…]`, so the
/// left leg of a dominator is compared against `cand[0..l1]` through the
/// left relation's local attribute indices — once per leg, not once per
/// partner pair. Merge the two halves (plus the aggregate counts) with
/// [`DomCounts::merge`]; the totals are identical to [`dom_counts`] on the
/// materialised joined rows.
#[inline]
pub fn dom_counts_partial(u: &[f64], attrs: &[usize], v: &[f64]) -> DomCounts {
    debug_assert_eq!(
        attrs.len(),
        v.len(),
        "segment length must match the attribute selection"
    );
    let mut le = 0u32;
    let mut lt = 0u32;
    for (&b, &attr) in v.iter().zip(attrs.iter()) {
        let a = u[attr];
        le += (a <= b) as u32;
        lt += (a < b) as u32;
    }
    DomCounts { le, lt }
}

/// Count `≤` / `<` positions of every row of a contiguous row-major
/// `block` (arity `v.len()`) against the single tuple `v`, appending one
/// [`DomCounts`] per row to `out`.
///
/// The loop is branch-free over a dense block so LLVM can vectorise the
/// counting; callers that need a filtered id set (e.g. target-set
/// construction) post-filter the counts.
///
/// # Panics
///
/// Debug builds assert `block.len()` is a multiple of `v.len()`; `v` must
/// be non-empty.
pub fn dom_counts_block(block: &[f64], v: &[f64], out: &mut Vec<DomCounts>) {
    let d = v.len();
    assert!(d > 0, "dom_counts_block requires at least one attribute");
    debug_assert_eq!(block.len() % d, 0, "block length must be a multiple of d");
    out.reserve(block.len() / d);
    for row in block.chunks_exact(d) {
        let mut le = 0u32;
        let mut lt = 0u32;
        for (a, b) in row.iter().zip(v.iter()) {
            le += (a <= b) as u32;
            lt += (a < b) as u32;
        }
        out.push(DomCounts { le, lt });
    }
}

/// Is `u` strictly better than `v` in at least one position?
#[inline]
pub fn strictly_better_somewhere(u: &[f64], v: &[f64]) -> bool {
    u.iter().zip(v.iter()).any(|(a, b)| a < b)
}

/// Count positions where `u[i] == v[i]` (used by the Unique Value Property
/// checks and target-set augmentation, paper Sec. 5.5).
#[inline]
pub fn equal_count(u: &[f64], v: &[f64]) -> usize {
    debug_assert_eq!(u.len(), v.len());
    u.iter().zip(v.iter()).filter(|(a, b)| a == b).count()
}

/// Do `u` and `v` share at least `m` equal attribute values?
///
/// Early-abandons symmetrically to [`k_dominates`].
#[inline]
pub fn shares_at_least(u: &[f64], v: &[f64], m: usize) -> bool {
    debug_assert_eq!(u.len(), v.len());
    let d = u.len();
    if m > d {
        return false;
    }
    let mut eq = 0usize;
    for i in 0..d {
        eq += (u[i] == v[i]) as usize;
        if eq + (d - i - 1) < m {
            return false;
        }
    }
    eq >= m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dom_counts_basic() {
        let u = [1.0, 2.0, 3.0];
        let v = [1.0, 3.0, 2.0];
        let c = dom_counts(&u, &v);
        assert_eq!(c, DomCounts { le: 2, lt: 1 });
    }

    #[test]
    fn full_dominance() {
        assert!(dominates(&[1.0, 2.0], &[1.0, 3.0]));
        assert!(!dominates(&[1.0, 3.0], &[1.0, 2.0]));
        // Equal tuples never dominate each other.
        assert!(!dominates(&[1.0, 2.0], &[1.0, 2.0]));
    }

    #[test]
    fn full_dominance_is_asymmetric() {
        let u = [1.0, 2.0];
        let v = [2.0, 3.0];
        assert!(dominates(&u, &v));
        assert!(!dominates(&v, &u));
    }

    #[test]
    fn k_dominance_equals_full_when_k_is_d() {
        let u = [1.0, 2.0, 5.0];
        let v = [2.0, 3.0, 4.0];
        assert_eq!(k_dominates(&u, &v, 3), dominates(&u, &v));
        let w = [2.0, 3.0, 6.0];
        assert_eq!(k_dominates(&u, &w, 3), dominates(&u, &w));
    }

    #[test]
    fn k_dominance_relaxes_full() {
        // u is better in 2 of 3 attributes, worse in the third.
        let u = [1.0, 1.0, 9.0];
        let v = [2.0, 2.0, 1.0];
        assert!(!dominates(&u, &v));
        assert!(k_dominates(&u, &v, 2));
        assert!(!k_dominates(&u, &v, 3));
    }

    #[test]
    fn k_dominance_can_be_mutual_when_k_small() {
        // With k <= d/2 two tuples can k-dominate each other (paper Sec. 2.2).
        let u = [1.0, 9.0];
        let v = [9.0, 1.0];
        assert!(k_dominates(&u, &v, 1));
        assert!(k_dominates(&v, &u, 1));
    }

    #[test]
    fn k_dominance_requires_strict() {
        let u = [1.0, 2.0];
        assert!(!k_dominates(&u, &u, 1));
        assert!(!k_dominates(&u, &u, 2));
    }

    #[test]
    fn k_larger_than_d_never_dominates() {
        assert!(!k_dominates(&[1.0], &[2.0], 2));
    }

    #[test]
    fn equal_count_and_shares() {
        let u = [1.0, 2.0, 3.0, 4.0];
        let v = [1.0, 9.0, 3.0, 0.0];
        assert_eq!(equal_count(&u, &v), 2);
        assert!(shares_at_least(&u, &v, 2));
        assert!(!shares_at_least(&u, &v, 3));
        assert!(!shares_at_least(&u, &v, 5));
    }

    #[test]
    fn merge_counts() {
        let a = DomCounts { le: 2, lt: 1 };
        let b = DomCounts { le: 3, lt: 0 };
        assert_eq!(a.merge(b), DomCounts { le: 5, lt: 1 });
        assert!(a.merge(b).k_dominates(5));
        assert!(!a.merge(b).k_dominates(6));
        assert!(!b.k_dominates(3)); // no strict position
    }

    #[test]
    fn partial_counts_select_attributes() {
        let u = [9.0, 1.0, 2.0, 9.0];
        let v = [1.0, 3.0];
        // Compare u[1] vs v[0] and u[2] vs v[1].
        let c = dom_counts_partial(&u, &[1, 2], &v);
        assert_eq!(c, DomCounts { le: 2, lt: 1 });
        // Empty selection contributes nothing.
        assert_eq!(dom_counts_partial(&u, &[], &[]), DomCounts { le: 0, lt: 0 });
    }

    #[test]
    fn partial_merge_equals_full_counts() {
        // Splitting a tuple into segments and merging the partial counts
        // reproduces dom_counts on the whole tuple.
        let u = [1.0, 5.0, 2.0, 4.0, 3.0];
        let v = [2.0, 5.0, 1.0, 9.0, 3.0];
        let full = dom_counts(&u, &v);
        let left = dom_counts_partial(&u, &[0, 1], &v[..2]);
        let right = dom_counts_partial(&u, &[2, 3, 4], &v[2..]);
        assert_eq!(left.merge(right), full);
    }

    #[test]
    fn block_counts_match_per_row_counts() {
        let block = [
            1.0, 2.0, 3.0, //
            3.0, 2.0, 1.0, //
            2.0, 2.0, 2.0, //
        ];
        let v = [2.0, 2.0, 2.0];
        let mut out = Vec::new();
        dom_counts_block(&block, &v, &mut out);
        assert_eq!(out.len(), 3);
        for (i, counts) in out.iter().enumerate() {
            assert_eq!(
                *counts,
                dom_counts(&block[i * 3..(i + 1) * 3], &v),
                "row {i}"
            );
        }
        // Appends without clearing.
        dom_counts_block(&block[..3], &v, &mut out);
        assert_eq!(out.len(), 4);
        assert_eq!(out[3], out[0]);
    }

    #[test]
    fn monotone_in_k() {
        // If u k-dominates v then u j-dominates v for every j <= k.
        let u = [1.0, 1.0, 5.0, 2.0];
        let v = [2.0, 2.0, 1.0, 2.0];
        let max_k = (1..=4).rev().find(|&k| k_dominates(&u, &v, k)).unwrap();
        for j in 1..=max_k {
            assert!(k_dominates(&u, &v, j), "failed at j={j}");
        }
    }
}
