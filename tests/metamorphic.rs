//! Metamorphic tests: transformations of the input that must not change
//! the skyline. These catch orientation, layout and normalisation bugs
//! that example-based tests tend to miss.

mod common;

use common::*;
use ksjq::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn run(cx: &JoinContext<'_>, k: usize) -> Vec<(u32, u32)> {
    ksjq_grouping(cx, k, &Config::default())
        .unwrap()
        .pairs
        .into_iter()
        .map(|(u, v)| (u.0, v.0))
        .collect()
}

/// Negating every raw value and flipping every preference Min↔Max leaves
/// all dominance relations — and hence the skyline — unchanged.
#[test]
fn preference_flip_invariance() {
    let mut rng = StdRng::seed_from_u64(77);
    let n = 60;
    let d = 4;
    let build = |rng: &mut StdRng, flip: bool, rows: &[(u64, Vec<f64>)]| {
        let mut sb = Schema::builder();
        for i in 0..d {
            let pref = if flip {
                Preference::Max
            } else {
                Preference::Min
            };
            sb = sb.local(format!("s{i}"), pref);
        }
        let mut b = Relation::builder(sb.build().unwrap());
        for (g, row) in rows {
            let row: Vec<f64> = row.iter().map(|&v| if flip { -v } else { v }).collect();
            b.add_grouped(*g, &row).unwrap();
        }
        let _ = rng;
        b.build().unwrap()
    };
    let gen_rows = |rng: &mut StdRng| -> Vec<(u64, Vec<f64>)> {
        (0..n)
            .map(|_| {
                (
                    rng.gen_range(0..4u64),
                    (0..d).map(|_| rng.gen_range(0..20) as f64).collect(),
                )
            })
            .collect()
    };
    let rows1 = gen_rows(&mut rng);
    let rows2 = gen_rows(&mut rng);

    let (a1, a2) = (
        build(&mut rng, false, &rows1),
        build(&mut rng, false, &rows2),
    );
    let (b1, b2) = (build(&mut rng, true, &rows1), build(&mut rng, true, &rows2));
    let cx_a = JoinContext::new(&a1, &a2, JoinSpec::Equality, &[]).unwrap();
    let cx_b = JoinContext::new(&b1, &b2, JoinSpec::Equality, &[]).unwrap();
    for k in 5..=8 {
        assert_eq!(run(&cx_a, k), run(&cx_b, k), "k={k}");
    }
}

/// Permuting the attribute order of both relations (consistently) must
/// not change which pairs win — dominance is position-symmetric.
#[test]
fn attribute_permutation_invariance() {
    let r1 = random_grouped(101, 70, 0, 4, 4, 12);
    let r2 = random_grouped(102, 70, 0, 4, 4, 12);
    let perm = [2usize, 0, 3, 1];
    let permute = |rel: &Relation| {
        let mut b = Relation::builder(Schema::uniform(4).unwrap());
        for (t, row) in rel.rows() {
            let g = rel.group_id(t).unwrap();
            let newrow: Vec<f64> = perm.iter().map(|&i| row[i]).collect();
            b.add_grouped(g, &newrow).unwrap();
        }
        b.build().unwrap()
    };
    let (p1, p2) = (permute(&r1), permute(&r2));
    let cx = JoinContext::new(&r1, &r2, JoinSpec::Equality, &[]).unwrap();
    let cxp = JoinContext::new(&p1, &p2, JoinSpec::Equality, &[]).unwrap();
    for k in 5..=8 {
        assert_eq!(run(&cx, k), run(&cxp, k), "k={k}");
    }
}

/// Positive affine transforms of an attribute (same transform on the
/// paired attribute when it aggregates by sum) preserve all comparisons.
#[test]
fn affine_scaling_invariance() {
    let r1 = random_grouped(103, 60, 1, 3, 4, 10);
    let r2 = random_grouped(104, 60, 1, 3, 4, 10);
    // Scale attribute j by (3x + 7) on both relations.
    let transform = |rel: &Relation| {
        let mut b = Relation::builder(Schema::uniform_agg(1, 3).unwrap());
        for (t, _) in rel.rows() {
            let g = rel.group_id(t).unwrap();
            let raw = rel.raw_row(t);
            let newrow: Vec<f64> = raw.iter().map(|&v| 3.0 * v + 7.0).collect();
            b.add_grouped(g, &newrow).unwrap();
        }
        b.build().unwrap()
    };
    let (s1, s2) = (transform(&r1), transform(&r2));
    let cx = JoinContext::new(&r1, &r2, JoinSpec::Equality, &[AggFunc::Sum]).unwrap();
    let cxs = JoinContext::new(&s1, &s2, JoinSpec::Equality, &[AggFunc::Sum]).unwrap();
    for k in 5..=7 {
        assert_eq!(run(&cx, k), run(&cxs, k), "k={k}");
    }
}

/// Renumbering join groups bijectively changes nothing.
#[test]
fn group_renaming_invariance() {
    let r1 = random_grouped(105, 50, 0, 3, 5, 8);
    let r2 = random_grouped(106, 50, 0, 3, 5, 8);
    let rename = |rel: &Relation| {
        let mut b = Relation::builder(Schema::uniform(3).unwrap());
        for (t, row) in rel.rows() {
            let g = rel.group_id(t).unwrap();
            b.add_grouped(1000 - g * 13, row).unwrap(); // order-reversing bijection
        }
        b.build().unwrap()
    };
    let (m1, m2) = (rename(&r1), rename(&r2));
    let cx = JoinContext::new(&r1, &r2, JoinSpec::Equality, &[]).unwrap();
    let cxm = JoinContext::new(&m1, &m2, JoinSpec::Equality, &[]).unwrap();
    for k in 4..=6 {
        assert_eq!(run(&cx, k), run(&cxm, k), "k={k}");
    }
}

/// Shuffling tuple order yields the same skyline modulo the id mapping.
#[test]
fn tuple_order_invariance() {
    let mut rng = StdRng::seed_from_u64(107);
    let r1 = random_grouped(108, 50, 0, 3, 4, 9);
    let r2 = random_grouped(109, 50, 0, 3, 4, 9);

    // Shuffle the left relation, remembering new ← old.
    let mut order: Vec<u32> = (0..r1.n() as u32).collect();
    for i in (1..order.len()).rev() {
        order.swap(i, rng.gen_range(0..=i));
    }
    let mut b = Relation::builder(Schema::uniform(3).unwrap());
    for &old in &order {
        let t = TupleId(old);
        b.add_grouped(r1.group_id(t).unwrap(), r1.row(t)).unwrap();
    }
    let shuffled = b.build().unwrap();

    let cx = JoinContext::new(&r1, &r2, JoinSpec::Equality, &[]).unwrap();
    let cxs = JoinContext::new(&shuffled, &r2, JoinSpec::Equality, &[]).unwrap();
    for k in 4..=6 {
        // Map the shuffled answer back through `order` and compare as sets.
        let mut base = run(&cx, k);
        let mut mapped: Vec<(u32, u32)> = run(&cxs, k)
            .into_iter()
            .map(|(u, v)| (order[u as usize], v))
            .collect();
        base.sort_unstable();
        mapped.sort_unstable();
        assert_eq!(base, mapped, "k={k}");
    }
}

/// Duplicating the whole right relation doubles every skyline pair
/// involving it (both copies survive or neither does).
#[test]
fn duplication_doubles_right_side() {
    let r1 = random_grouped(110, 40, 0, 3, 3, 8);
    let r2 = random_grouped(111, 40, 0, 3, 3, 8);
    let mut b = Relation::builder(Schema::uniform(3).unwrap());
    for (t, row) in r2.rows() {
        b.add_grouped(r2.group_id(t).unwrap(), row).unwrap();
    }
    for (t, row) in r2.rows() {
        b.add_grouped(r2.group_id(t).unwrap(), row).unwrap();
    }
    let doubled = b.build().unwrap();
    let cx = JoinContext::new(&r1, &r2, JoinSpec::Equality, &[]).unwrap();
    let cxd = JoinContext::new(&r1, &doubled, JoinSpec::Equality, &[]).unwrap();
    let n2 = r2.n() as u32;
    for k in 4..=6 {
        let base = run(&cx, k);
        let dbl = run(&cxd, k);
        assert_eq!(dbl.len(), base.len() * 2, "k={k}");
        for &(u, v) in &base {
            assert!(dbl.contains(&(u, v)), "k={k}: missing original copy");
            assert!(dbl.contains(&(u, v + n2)), "k={k}: missing duplicate copy");
        }
    }
}
