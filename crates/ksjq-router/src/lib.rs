//! Sharded, replicated KSJQ.
//!
//! This crate scales the single-node serving layer out to a cluster of
//! `N` shards × `M` replicas of `ksjq-serverd`, behind a router that
//! speaks the ordinary client protocol — `KsjqClient` works against a
//! `ksjq-routerd` unchanged, and gets byte-identical answers.
//!
//! * [`topology`] — cluster shape and join-key placement: a stable
//!   FNV-1a hash of the key string picks the shard, so all rows of one
//!   join group (from both relations) co-locate and every joined tuple
//!   exists on exactly one shard.
//! * [`partition`] — splitting a `LOAD` into per-shard CSV slices that
//!   preserve global row order, plus the local→global id maps.
//! * [`dialer`] — pooled backend connections with bounded, jittered
//!   retries and replica failover.
//! * [`decision_log`] — the coordinator's durable two-phase WAL
//!   (`--data-dir`): begin/decide/outcome records that let a restarted
//!   router drive every in-doubt transaction to committed-everywhere or
//!   aborted-everywhere before accepting traffic.
//! * [`merge`] — the deterministic k-way merge of per-shard sorted
//!   results.
//! * [`router`] — [`Router`]: two-phase distributed `LOAD`
//!   (stage-everywhere / commit-everywhere, so a failed load never
//!   drops a live binding), two-round scatter-gather query execution
//!   (local skylines, then cross-shard `FETCH`/`CHECK` verification),
//!   and `STATS` fan-out counters.
//!
//! ```no_run
//! use ksjq_router::{Router, RouterConfig, Topology};
//! use ksjq_server::{KsjqClient, PlanSpec};
//!
//! // Two shards, each one replica, already running ksjq-serverd.
//! let topology = Topology::new(vec![
//!     vec!["127.0.0.1:7881".into()],
//!     vec!["127.0.0.1:7882".into()],
//! ]).unwrap();
//! let config = RouterConfig { addr: "127.0.0.1:0".into(), ..RouterConfig::default() };
//! let router = Router::start(topology, &config).unwrap();
//!
//! // Any KSJQ client speaks to the router as if it were one server.
//! let mut client = KsjqClient::connect(router.addr()).unwrap();
//! client.load_csv("out", "city,cost,rating:max\nJAI,5,4\nDEL,7,9\n").unwrap();
//! client.load_csv("inb", "city,cost,rating:max\nJAI,2,8\nDEL,3,1\n").unwrap();
//! let rows = client.query(&PlanSpec::new("out", "inb").k(3)).unwrap();
//! println!("{} skyline pairs", rows.pairs.len());
//! ```

pub mod decision_log;
pub mod dialer;
pub mod merge;
pub mod partition;
pub mod router;
pub mod topology;

pub use decision_log::{Decision, DecisionLog, Txn, TxnKind};
pub use dialer::{DialPolicy, Dialer, FanoutCounters, ShardDialer};
pub use merge::merge_sorted;
pub use partition::{
    partition_csv, partition_delta, partition_synthetic, PartitionedDelta, PartitionedLoad,
};
pub use router::{Router, RouterConfig, RunningRouter, DEFAULT_CHECK_BATCH, DEFAULT_FETCH_BATCH};
pub use topology::{fnv1a64, shard_of, Topology};
