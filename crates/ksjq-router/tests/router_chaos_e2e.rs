//! Chaos tests over the real `ksjq-routerd` binary: crash the router at
//! *every* two-phase frame boundary of a distributed `LOAD` and an
//! `APPEND` (the `KSJQ_CRASH_AT` sweep — each boundary calls `abort()`,
//! the in-process stand-in for `kill -9`), restart it on the same
//! `--data-dir`, and the decision-WAL resolution protocol must drive
//! every shard replica to committed-everywhere or aborted-everywhere —
//! never a split. Afterwards the cluster must still answer queries
//! byte-identical to a single-node oracle.

use ksjq_datagen::{paper_flights, relation_to_csv};
use ksjq_router::shard_of;
use ksjq_server::{ErrorCode, KsjqClient, PlanSpec, RunningServer, Server, ServerConfig};
use std::io::{BufRead, BufReader};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::Duration;

const N_SHARDS: usize = 2;

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ksjq-router-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn backend() -> RunningServer {
    let config = ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        cache_entries: 16,
        ..ServerConfig::default()
    };
    Server::start(ksjq_core::Engine::new(), &config).unwrap()
}

/// A live `ksjq-routerd` child process (killed on drop).
struct RouterD {
    child: Child,
    addr: String,
}

fn spawn_routerd(dir: &str, shards: &[String], crash_at: Option<u64>) -> RouterD {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_ksjq-routerd"));
    cmd.args(["--addr", "127.0.0.1:0", "--data-dir", dir]);
    for shard in shards {
        cmd.args(["--shard", shard]);
    }
    if let Some(n) = crash_at {
        cmd.env("KSJQ_CRASH_AT", n.to_string());
    }
    let mut child = cmd
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn ksjq-routerd");
    let stdout = child.stdout.take().expect("stdout piped");
    let mut lines = BufReader::new(stdout).lines();
    let addr = loop {
        let line = lines
            .next()
            .expect("ksjq-routerd exited before listening")
            .expect("readable stdout");
        if let Some(rest) = line.strip_prefix("ksjq-routerd listening on ") {
            break rest
                .split_whitespace()
                .next()
                .expect("address token")
                .to_owned();
        }
    };
    std::thread::spawn(move || lines.for_each(drop));
    RouterD { child, addr }
}

impl RouterD {
    fn kill(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }

    /// True once the child has exited on its own (the `abort()` fired).
    fn wait_exit(&mut self) -> bool {
        for _ in 0..250 {
            if matches!(self.child.try_wait(), Ok(Some(_))) {
                return true;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        false
    }
}

impl Drop for RouterD {
    fn drop(&mut self) {
        self.kill();
    }
}

fn connect(addr: &str) -> KsjqClient {
    for _ in 0..250 {
        if let Ok(client) = KsjqClient::connect(addr) {
            return client;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    panic!("ksjq-routerd at {addr} never accepted");
}

/// Poll STATS until the recovering gate opens; returns the final line.
/// STATS is one of the few verbs a recovering router answers, so this
/// also exercises the `ERR recovering` gate staying out of its way.
fn await_ready(addr: &str) -> String {
    for _ in 0..500 {
        if let Ok(mut client) = KsjqClient::connect(addr) {
            if let Ok(line) = client.raw("STATS") {
                if line.contains(" recovering=0") {
                    return line;
                }
            }
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    panic!("ksjq-routerd at {addr} never finished in-doubt resolution");
}

/// Parse an integer STATS token like `in_doubt_resolved=3`.
fn token(stats: &str, key: &str) -> u64 {
    let at = stats
        .find(key)
        .unwrap_or_else(|| panic!("{key} missing from {stats}"));
    stats[at + key.len()..]
        .split_whitespace()
        .next()
        .unwrap()
        .parse()
        .unwrap()
}

/// `n` join keys that the placement function sends to `shard`.
fn bucket_keys(shard: usize, n: usize) -> Vec<String> {
    (0..)
        .map(|i| format!("K{i}"))
        .filter(|k| shard_of(k, N_SHARDS) == shard)
        .take(n)
        .collect()
}

/// A relation whose base load and delta both touch every shard, so the
/// crash sweep exercises every per-shard frame of both two-phase ops.
fn volatile_csvs() -> (String, String) {
    let mut base = String::from("city,a,b\n");
    let mut delta = String::new();
    for shard in 0..N_SHARDS {
        let keys = bucket_keys(shard, 5);
        for (i, key) in keys[..3].iter().enumerate() {
            base.push_str(&format!("{key},{},{}\n", i + 1, 9 - i));
        }
        for (i, key) in keys[3..].iter().enumerate() {
            delta.push_str(&format!("{key},{},{}\n", i + 4, 6 - i));
        }
    }
    (base, delta)
}

/// The canonical single-node export of the volatile relation after a
/// clean LOAD (and optionally the APPEND) — what a committed broadcast
/// copy must be byte-identical to.
fn canonical(base: &str, delta: Option<&str>) -> String {
    let server = backend();
    let mut client = KsjqClient::connect(server.addr()).unwrap();
    client.load_csv("volatile", base).unwrap();
    if let Some(rows) = delta {
        client.append_rows("volatile", rows).unwrap();
    }
    let out = client.sync_relation("volatile").unwrap();
    client.close().unwrap();
    server.stop().unwrap();
    out
}

/// Data rows in a SYNC export (first line is the header).
fn rows_in(csv: &str) -> usize {
    csv.lines().count().saturating_sub(1)
}

fn paper_csvs() -> (String, String) {
    let pf = paper_flights(false);
    (
        relation_to_csv(&pf.outbound, "city", Some(&pf.cities)).unwrap(),
        relation_to_csv(&pf.inbound, "city", Some(&pf.cities)).unwrap(),
    )
}

#[test]
fn crash_at_every_two_phase_boundary_converges() {
    let (base, delta) = volatile_csvs();
    let ref_base = canonical(&base, None);
    let ref_appended = canonical(&base, Some(&delta));
    let (out_csv, in_csv) = paper_csvs();
    let ks = [5usize, 7];
    let expected: Vec<Vec<(u32, u32)>> = {
        let server = backend();
        let mut client = KsjqClient::connect(server.addr()).unwrap();
        client.load_csv("outbound", &out_csv).unwrap();
        client.load_csv("inbound", &in_csv).unwrap();
        let answers = ks
            .iter()
            .map(|&k| {
                client
                    .query(&PlanSpec::new("outbound", "inbound").k(k))
                    .unwrap()
                    .pairs
            })
            .collect();
        client.close().unwrap();
        server.stop().unwrap();
        answers
    };

    let (mut load_crashes, mut append_crashes) = (0u32, 0u32);
    let mut completed = false;
    for n in 1..=64u64 {
        let dir = tmpdir(&format!("sweep-{n}"));
        let dir_arg = dir.to_str().unwrap().to_owned();
        let backends: Vec<RunningServer> = (0..N_SHARDS).map(|_| backend()).collect();
        let shard_args: Vec<String> = backends.iter().map(|b| b.addr().to_string()).collect();

        // The armed router aborts at its n-th two-phase boundary,
        // somewhere inside the LOAD or the APPEND (or not at all, once
        // n walks past the last boundary — which ends the sweep).
        let mut armed = spawn_routerd(&dir_arg, &shard_args, Some(n));
        let mut client = connect(&armed.addr);
        let load_res = client.load_csv("volatile", &base);
        let append_res = match &load_res {
            Ok(_) => Some(client.append_rows("volatile", &delta)),
            Err(_) => None,
        };
        let crashed = load_res.is_err() || matches!(&append_res, Some(Err(_)));
        drop(client);
        if crashed {
            if load_res.is_err() {
                load_crashes += 1;
            } else {
                append_crashes += 1;
            }
            assert!(
                armed.wait_exit(),
                "n={n}: request failed but routerd is still alive"
            );
        }
        // One decision log, one writer: the armed router must be gone
        // before its successor opens the directory.
        armed.kill();

        let revived = spawn_routerd(&dir_arg, &shard_args, None);
        let stats = await_ready(&revived.addr);
        if crashed {
            // Every crash past the BEGIN record leaves an in-doubt
            // transaction, and the BEGIN is durable before boundary 1.
            assert!(
                token(&stats, "in_doubt_resolved=") >= 1,
                "n={n}: nothing resolved after a crash: {stats}"
            );
        }

        // Committed-everywhere or aborted-everywhere: the name is
        // visible on every shard plus the shard-0 broadcast copy, or on
        // none of them — and nothing is left staged anywhere.
        let mut names: Vec<Vec<String>> = Vec::new();
        for (s, b) in backends.iter().enumerate() {
            let mut c = KsjqClient::connect(b.addr()).unwrap();
            assert!(
                c.staged_names().unwrap().is_empty(),
                "n={n} shard {s}: staged leftovers after resolution"
            );
            names.push(c.sync_names().unwrap());
            c.close().unwrap();
        }
        let has = |s: usize, name: &str| names[s].iter().any(|x| x == name);
        let visible = [
            has(0, "volatile"),
            has(1, "volatile"),
            has(0, ".all.volatile"),
        ];
        if visible.iter().any(|&v| v) {
            assert!(
                visible.iter().all(|&v| v),
                "n={n}: split commit after resolution: {names:?}"
            );
            // A committed outcome must be one of the two clean states —
            // base-only (APPEND aborted) or base+delta — never torn.
            let mut c0 = KsjqClient::connect(backends[0].addr()).unwrap();
            let all = c0.sync_relation(".all.volatile").unwrap();
            c0.close().unwrap();
            assert!(
                all == ref_base || all == ref_appended,
                "n={n}: broadcast copy is neither clean state"
            );
            let mut total = 0;
            for b in &backends {
                let mut c = KsjqClient::connect(b.addr()).unwrap();
                total += rows_in(&c.sync_relation("volatile").unwrap());
                c.close().unwrap();
            }
            assert_eq!(
                total,
                rows_in(&all),
                "n={n}: shard slices do not sum to the broadcast copy"
            );
        }

        // The recovered cluster still serves byte-identical answers.
        let mut client = connect(&revived.addr);
        client.load_csv("outbound", &out_csv).unwrap();
        client.load_csv("inbound", &in_csv).unwrap();
        for (&k, want) in ks.iter().zip(&expected) {
            let rows = client
                .query(&PlanSpec::new("outbound", "inbound").k(k))
                .unwrap();
            assert_eq!(&rows.pairs, want, "n={n} k={k}");
        }
        client.close().unwrap();
        drop(revived);
        for b in backends {
            let _ = b.stop();
        }
        let _ = std::fs::remove_dir_all(&dir);
        if !crashed {
            completed = true;
            break;
        }
    }
    assert!(
        completed,
        "64 boundaries was not enough to finish a LOAD + APPEND"
    );
    assert!(
        load_crashes > 5 && append_crashes > 5,
        "sweep barely exercised both ops: {load_crashes} LOAD / {append_crashes} APPEND crashes"
    );
    eprintln!("chaos sweep: {load_crashes} crashes in LOAD, {append_crashes} in APPEND");
}

/// A router restarted with pending in-doubt work but unreachable shards
/// must gate traffic behind `ERR recovering` (while still answering
/// STATS), then converge once the shards come back.
#[test]
fn recovering_gate_holds_until_shards_return() {
    let (base, _) = volatile_csvs();
    let dir = tmpdir("gate");
    let dir_arg = dir.to_str().unwrap().to_owned();
    let backends: Vec<RunningServer> = (0..N_SHARDS).map(|_| backend()).collect();
    let shard_args: Vec<String> = backends.iter().map(|b| b.addr().to_string()).collect();

    // Crash mid-LOAD so the decision WAL holds an in-doubt transaction.
    let mut armed = spawn_routerd(&dir_arg, &shard_args, Some(3));
    let mut client = connect(&armed.addr);
    assert!(client.load_csv("volatile", &base).is_err());
    drop(client);
    assert!(armed.wait_exit());
    armed.kill();

    // Take the whole cluster down before the router comes back: the
    // revived router cannot resolve anything yet.
    let dead_args = shard_args.clone();
    for b in backends {
        b.stop().unwrap();
    }
    let revived = spawn_routerd(&dir_arg, &dead_args, None);
    let mut client = connect(&revived.addr);
    let err = client
        .load_csv("other", "city,a\nX,1\n")
        .expect_err("mutations must be gated while recovering");
    assert_eq!(
        err.code(),
        Some(ErrorCode::Recovering),
        "expected ERR recovering, got {err}"
    );
    let stats = client.raw("STATS").unwrap();
    assert!(stats.contains(" recovering=1"), "{stats}");
    drop(client);

    // The shard addresses are gone for good (ephemeral ports), so the
    // router can never converge — the gate must still be up after its
    // retry backoff has cycled a few times.
    std::thread::sleep(Duration::from_millis(400));
    let mut client = connect(&revived.addr);
    let stats = client.raw("STATS").unwrap();
    assert!(
        stats.contains(" recovering=1"),
        "gate dropped with shards still dead: {stats}"
    );
    drop(client);
    drop(revived);
    let _ = std::fs::remove_dir_all(&dir);
}
