//! Deterministic transport fault injection.
//!
//! A [`FaultPlan`] is a seed plus per-mille rates for four transport
//! misbehaviours — dropped connections, bit-flipped bytes, partial
//! writes, and injected delays — plus one server-side execution fault:
//! `panic=`, which arms a worker panic at an engine kernel checkpoint
//! (exercising the `catch_unwind` isolation that must turn any worker
//! panic into `ERR internal`). The plan itself is pure data (`Copy`,
//! `Eq`); per-connection decisions come from a [`FaultStream`], a
//! splitmix64 generator keyed on `seed ^ conn_id`. Re-running a chaos
//! schedule with the same plan and the same connection order therefore
//! replays the *same* faults — the failure printed by a CI chaos job is
//! reproducible from the seed in its log line.
//!
//! The plan rides into both halves of the system:
//!
//! * client-side via `ConnectOptions::faults` — `KsjqClient` corrupts or
//!   truncates its own writes and drops its own reads, which is how the
//!   router's dialer exercises failover;
//! * server-side via `--faults` / `KSJQ_FAULTS` — the front end applies
//!   the plan to accepted connections, which is how an otherwise healthy
//!   client sees a flaky server.
//!
//! Rates are expressed in per-mille (0–1000) so the plan stays integral
//! and hashable; `drop=10` means 1% of decision points sever the
//! connection.

use std::fmt;
use std::str::FromStr;

/// A seeded fault schedule. All-zero rates (the [`Default`]) inject
/// nothing and cost one branch per I/O call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct FaultPlan {
    /// Root seed; combined with the connection id per stream.
    pub seed: u64,
    /// Per-mille chance a decision point severs the connection.
    pub drop_pm: u32,
    /// Per-mille chance per buffer that one byte gets a bit flipped.
    pub flip_pm: u32,
    /// Per-mille chance a write is truncated before the terminator and
    /// the connection closed mid-frame.
    pub partial_pm: u32,
    /// Per-mille chance a decision point sleeps for [`delay_ms`](Self::delay_ms).
    pub delay_pm: u32,
    /// Sleep applied when a delay fires.
    pub delay_ms: u64,
    /// Per-mille chance a query execution arms a worker panic at one of
    /// the engine's kernel checkpoints (server-side only — the front end
    /// cannot panic a remote peer). The worker's `catch_unwind` must turn
    /// it into `ERR internal` and leave the pool healthy.
    pub panic_pm: u32,
}

impl FaultPlan {
    /// True if any fault can ever fire.
    pub fn is_active(&self) -> bool {
        self.drop_pm | self.flip_pm | self.partial_pm | self.delay_pm | self.panic_pm != 0
    }

    /// The decision stream for one connection. Different connections get
    /// decorrelated streams; the same `(plan, conn_id)` always replays
    /// identically.
    pub fn stream(&self, conn_id: u64) -> FaultStream {
        FaultStream {
            plan: *self,
            state: self.seed ^ conn_id.wrapping_mul(0x9e37_79b9_7f4a_7c15),
        }
    }

    /// Parse the plan from the `KSJQ_FAULTS` environment variable, if
    /// set. An unparsable value is an error, not a silent no-op — a typo
    /// in a chaos job must fail loudly.
    pub fn from_env(var: &str) -> Result<Option<FaultPlan>, String> {
        match std::env::var(var) {
            Ok(s) if !s.trim().is_empty() => s.parse().map(Some),
            _ => Ok(None),
        }
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "seed={},drop={},flip={},partial={},delay={}:{},panic={}",
            self.seed,
            self.drop_pm,
            self.flip_pm,
            self.partial_pm,
            self.delay_pm,
            self.delay_ms,
            self.panic_pm
        )
    }
}

impl FromStr for FaultPlan {
    type Err = String;

    /// Format: comma-separated `key=value` pairs, e.g.
    /// `seed=7,drop=10,flip=5,partial=10,delay=20:3` (delay's value is
    /// `<per-mille>:<millis>`). Unknown keys and out-of-range rates are
    /// rejected.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut plan = FaultPlan::default();
        for part in s.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("fault spec `{part}` is not key=value"))?;
            let rate = |v: &str| -> Result<u32, String> {
                let n: u32 = v
                    .parse()
                    .map_err(|_| format!("fault rate `{v}` is not an integer"))?;
                if n > 1000 {
                    return Err(format!("fault rate `{v}` exceeds 1000 per-mille"));
                }
                Ok(n)
            };
            match key {
                "seed" => {
                    plan.seed = value
                        .parse()
                        .map_err(|_| format!("fault seed `{value}` is not an integer"))?
                }
                "drop" => plan.drop_pm = rate(value)?,
                "flip" => plan.flip_pm = rate(value)?,
                "partial" => plan.partial_pm = rate(value)?,
                "panic" => plan.panic_pm = rate(value)?,
                "delay" => match value.split_once(':') {
                    Some((pm, ms)) => {
                        plan.delay_pm = rate(pm)?;
                        plan.delay_ms = ms
                            .parse()
                            .map_err(|_| format!("delay millis `{ms}` is not an integer"))?;
                    }
                    None => {
                        plan.delay_pm = rate(value)?;
                        plan.delay_ms = 1;
                    }
                },
                other => return Err(format!("unknown fault key `{other}`")),
            }
        }
        Ok(plan)
    }
}

/// What a decision point should do to the connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Proceed untouched.
    None,
    /// Sever the connection now.
    Drop,
    /// Write only a prefix, then sever (a torn frame).
    Partial,
}

/// Per-connection deterministic fault decisions.
#[derive(Debug, Clone)]
pub struct FaultStream {
    plan: FaultPlan,
    state: u64,
}

impl FaultStream {
    /// splitmix64 step — the same generator the dialer's backoff jitter
    /// uses, so chaos runs share one reproducibility story.
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn roll(&mut self, pm: u32) -> bool {
        pm != 0 && self.next() % 1000 < pm as u64
    }

    /// Decide the fate of one outgoing buffer, sleeping through any
    /// delay fault first. `Partial` carries no offset — the caller picks
    /// a cut with [`cut_point`](Self::cut_point).
    pub fn on_write(&mut self) -> FaultAction {
        if self.roll(self.plan.delay_pm) {
            std::thread::sleep(std::time::Duration::from_millis(self.plan.delay_ms));
        }
        if self.roll(self.plan.drop_pm) {
            return FaultAction::Drop;
        }
        if self.roll(self.plan.partial_pm) {
            return FaultAction::Partial;
        }
        FaultAction::None
    }

    /// Decide the fate of one incoming read.
    pub fn on_read(&mut self) -> FaultAction {
        if self.roll(self.plan.delay_pm) {
            std::thread::sleep(std::time::Duration::from_millis(self.plan.delay_ms));
        }
        if self.roll(self.plan.drop_pm) {
            return FaultAction::Drop;
        }
        FaultAction::None
    }

    /// Maybe flip one bit somewhere in `buf` (never the trailing
    /// newline, so framing survives and the *payload* corruption is what
    /// gets detected downstream). Returns true if a flip happened.
    pub fn maybe_flip(&mut self, buf: &mut [u8]) -> bool {
        let scope = match buf.last() {
            Some(b'\n') => buf.len() - 1,
            _ => buf.len(),
        };
        if scope == 0 || !self.roll(self.plan.flip_pm) {
            return false;
        }
        let at = (self.next() % scope as u64) as usize;
        let bit = (self.next() % 8) as u8;
        buf[at] ^= 1 << bit;
        true
    }

    /// Should this query execution arm an injected worker panic? Rolled
    /// once per execution by the server, before the engine runs.
    pub fn roll_panic(&mut self) -> bool {
        self.roll(self.plan.panic_pm)
    }

    /// How many kernel checkpoints to let pass before the armed panic
    /// fires — varied so injected panics land in different engine phases
    /// across executions, not always at the first checkpoint.
    pub fn panic_after(&mut self) -> u64 {
        1 + self.next() % 64
    }

    /// A truncation point strictly inside `len` for a `Partial` action.
    pub fn cut_point(&mut self, len: usize) -> usize {
        if len <= 1 {
            0
        } else {
            (self.next() % (len as u64 - 1)) as usize
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_parses_and_round_trips() {
        let plan: FaultPlan = "seed=7,drop=10,flip=5,partial=10,delay=20:3"
            .parse()
            .unwrap();
        assert_eq!(
            plan,
            FaultPlan {
                seed: 7,
                drop_pm: 10,
                flip_pm: 5,
                partial_pm: 10,
                delay_pm: 20,
                delay_ms: 3,
                panic_pm: 0,
            }
        );
        assert_eq!(plan.to_string().parse::<FaultPlan>().unwrap(), plan);
        assert!(plan.is_active());
        assert!(!FaultPlan::default().is_active());
    }

    #[test]
    fn bad_specs_are_rejected() {
        for bad in [
            "drop",
            "drop=1001",
            "seed=x",
            "noise=1",
            "delay=10:x",
            "panic=1001",
            "panic=x",
        ] {
            assert!(bad.parse::<FaultPlan>().is_err(), "{bad}");
        }
    }

    #[test]
    fn panic_rate_parses_and_round_trips() {
        let plan: FaultPlan = "seed=9,panic=250".parse().unwrap();
        assert_eq!(plan.panic_pm, 250);
        assert!(plan.is_active());
        assert_eq!(plan.to_string().parse::<FaultPlan>().unwrap(), plan);
        let mut s = plan.stream(1);
        // A 25% rate must fire sometimes and not always over 64 rolls.
        let fired = (0..64).filter(|_| s.roll_panic()).count();
        assert!(fired > 0 && fired < 64, "fired={fired}");
        for _ in 0..32 {
            let after = s.panic_after();
            assert!((1..=64).contains(&after));
        }
    }

    #[test]
    fn streams_replay_deterministically() {
        let plan: FaultPlan = "seed=42,drop=100,flip=200,partial=100".parse().unwrap();
        let replay = |conn: u64| {
            let mut s = plan.stream(conn);
            let mut trace = Vec::new();
            for _ in 0..64 {
                trace.push(s.on_write());
                let mut buf = *b"HELLO world\n";
                trace.push(if s.maybe_flip(&mut buf) {
                    FaultAction::Partial // just a marker for the trace
                } else {
                    FaultAction::None
                });
            }
            trace
        };
        assert_eq!(replay(1), replay(1));
        assert_ne!(replay(1), replay(2), "streams must decorrelate by conn id");
    }

    #[test]
    fn flips_never_break_framing() {
        let plan: FaultPlan = "seed=3,flip=1000".parse().unwrap();
        let mut s = plan.stream(9);
        for _ in 0..256 {
            let mut buf = *b"APPEND outbound ROWS ZRH,1,2,3,4\n";
            assert!(s.maybe_flip(&mut buf));
            assert_eq!(*buf.last().unwrap(), b'\n');
        }
    }

    #[test]
    fn cut_points_stay_inside_the_frame() {
        let plan: FaultPlan = "seed=5,partial=1000".parse().unwrap();
        let mut s = plan.stream(1);
        for len in [1usize, 2, 3, 64] {
            for _ in 0..32 {
                assert!(s.cut_point(len) < len.max(1));
            }
        }
    }
}
