//! Execution configuration shared by all KSJQ algorithms.

use ksjq_skyline::KdomAlgo;
use std::time::{Duration, Instant};

/// Tuning knobs for query execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Config {
    /// Which single-relation k-dominant skyline algorithm classification
    /// and the naïve path use. Defaults to the Two-Scan Algorithm.
    pub kdom: KdomAlgo,
    /// The naïve algorithm materialises the join when
    /// `|R1 ⋈ R2| · d_joined` does not exceed this many `f64` values
    /// (default 4 × 10⁷ ≈ 320 MB); beyond it, it streams with the two-scan
    /// skyline and cannot attribute a separate join time.
    pub materialize_limit: usize,
    /// Worker threads for the parallel extension (1 = serial, the paper's
    /// setting; >1 parallelises classification and candidate verification).
    pub threads: usize,
    /// Cooperative cancellation deadline: execution loops tick a
    /// [`Checkpoint`](crate::cancel::Checkpoint) against this instant and
    /// return [`CoreError::DeadlineExceeded`](crate::CoreError) once it
    /// passes. `None` (the default) never cancels.
    pub deadline: Option<Instant>,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            kdom: KdomAlgo::Tsa,
            materialize_limit: 40_000_000,
            threads: 1,
            deadline: None,
        }
    }
}

impl Config {
    /// A config using `threads` workers.
    pub fn with_threads(threads: usize) -> Self {
        Config {
            threads: threads.max(1),
            ..Default::default()
        }
    }

    /// This config with its deadline tightened to `deadline` (an existing
    /// earlier deadline wins; `None` leaves the config unchanged).
    pub fn deadline_capped(mut self, deadline: Option<Instant>) -> Self {
        self.deadline = match (self.deadline, deadline) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        self
    }

    /// This config with a deadline `budget` from now.
    pub fn with_budget(self, budget: Duration) -> Self {
        self.deadline_capped(Some(Instant::now() + budget))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_serial_tsa() {
        let c = Config::default();
        assert_eq!(c.kdom, KdomAlgo::Tsa);
        assert_eq!(c.threads, 1);
    }

    #[test]
    fn with_threads_clamps_to_one() {
        assert_eq!(Config::with_threads(0).threads, 1);
        assert_eq!(Config::with_threads(8).threads, 8);
    }

    #[test]
    fn deadline_capped_keeps_the_earlier_instant() {
        let now = Instant::now();
        let soon = now + Duration::from_millis(10);
        let later = now + Duration::from_secs(10);
        let c = Config::default();
        assert_eq!(c.deadline, None);
        assert_eq!(c.deadline_capped(None).deadline, None);
        assert_eq!(c.deadline_capped(Some(soon)).deadline, Some(soon));
        let tight = c.deadline_capped(Some(later)).deadline_capped(Some(soon));
        assert_eq!(tight.deadline, Some(soon));
        let keeps = c.deadline_capped(Some(soon)).deadline_capped(Some(later));
        assert_eq!(keeps.deadline, Some(soon));
    }
}
