//! A blocking client for the KSJQ wire protocol.
//!
//! One lockstep request/response exchange per call. Protocol-level
//! failures (`ERR` frames) are surfaced as [`ClientError::Server`] so
//! callers can distinguish "the server said no" from "the wire broke".

use crate::protocol::{
    LoadSource, PlanSpec, Request, Response, RowSet, ServerStats, SyntheticSpec,
};
use std::fmt;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// What can go wrong on a client call.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure (connect, read, write, unexpected EOF).
    Io(io::Error),
    /// The server answered, but with an `ERR` frame.
    Server(String),
    /// The server answered with a frame this call did not expect (e.g.
    /// `OK` where `ROWS` was required), or one that does not parse.
    Protocol(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Server(msg) => write!(f, "server error: {msg}"),
            ClientError::Protocol(msg) => write!(f, "protocol error: {msg}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// Convenience alias for client results.
pub type ClientResult<T> = Result<T, ClientError>;

/// A blocking KSJQ protocol client over one TCP connection.
#[derive(Debug)]
pub struct KsjqClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl KsjqClient {
    /// Connect to a running server.
    pub fn connect(addr: impl ToSocketAddrs) -> ClientResult<KsjqClient> {
        let writer = TcpStream::connect(addr)?;
        // Lockstep one-line exchanges: Nagle only adds latency here.
        let _ = writer.set_nodelay(true);
        let reader = BufReader::new(writer.try_clone()?);
        Ok(KsjqClient { reader, writer })
    }

    /// Send a raw line and return the raw response line — the escape
    /// hatch the fuzz tests and the `ksjq-client` binary use.
    pub fn raw(&mut self, line: &str) -> ClientResult<String> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let mut response = String::new();
        let n = self.reader.read_line(&mut response)?;
        if n == 0 {
            return Err(ClientError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            )));
        }
        Ok(response.trim_end().to_owned())
    }

    /// Send a typed request, parse the typed response. `ERR` frames are
    /// *returned*, not raised — use the typed helpers below for that.
    pub fn request(&mut self, request: &Request) -> ClientResult<Response> {
        let line = self.raw(&request.to_string())?;
        Response::parse(&line).map_err(ClientError::Protocol)
    }

    fn expect_ok(&mut self, request: &Request) -> ClientResult<String> {
        match self.request(request)? {
            Response::Ok(info) => Ok(info),
            Response::Error(msg) => Err(ClientError::Server(msg)),
            other => Err(ClientError::Protocol(format!("expected OK, got {other}"))),
        }
    }

    fn expect_rows(&mut self, request: &Request) -> ClientResult<RowSet> {
        match self.request(request)? {
            Response::Rows(rows) => Ok(rows),
            Response::Error(msg) => Err(ClientError::Server(msg)),
            other => Err(ClientError::Protocol(format!("expected ROWS, got {other}"))),
        }
    }

    /// `LOAD <name> INLINE <csv>` — register a CSV relation (newline row
    /// separators; the client handles the wire encoding).
    ///
    /// Rejects CSV containing `';'` up front: it is the row separator on
    /// the wire, so sending it would silently re-frame the caller's rows.
    pub fn load_csv(&mut self, name: &str, csv: &str) -> ClientResult<String> {
        if csv.contains(';') {
            return Err(ClientError::Protocol(
                "inline CSV must not contain ';' (the wire row separator)".into(),
            ));
        }
        self.expect_ok(&Request::Load {
            name: name.into(),
            source: LoadSource::Inline { csv: csv.into() },
        })
    }

    /// `LOAD <name> SYNTHETIC …` — generate server-side.
    pub fn load_synthetic(&mut self, name: &str, spec: SyntheticSpec) -> ClientResult<String> {
        self.expect_ok(&Request::Load {
            name: name.into(),
            source: LoadSource::Synthetic(spec),
        })
    }

    /// `PREPARE <id> …` — validate and name a query for later execution.
    pub fn prepare(&mut self, id: &str, plan: &PlanSpec) -> ClientResult<String> {
        self.expect_ok(&Request::Prepare {
            id: id.into(),
            plan: plan.clone(),
        })
    }

    /// `EXECUTE <id>` — run a prepared query.
    pub fn execute(&mut self, id: &str) -> ClientResult<RowSet> {
        self.expect_rows(&Request::Execute { id: id.into() })
    }

    /// `QUERY …` — one-shot prepare + execute.
    pub fn query(&mut self, plan: &PlanSpec) -> ClientResult<RowSet> {
        self.expect_rows(&Request::Query { plan: plan.clone() })
    }

    /// `EXPLAIN <id>` — the one-line plan summary.
    pub fn explain(&mut self, id: &str) -> ClientResult<String> {
        match self.request(&Request::Explain { id: id.into() })? {
            Response::Explain(text) => Ok(text),
            Response::Error(msg) => Err(ClientError::Server(msg)),
            other => Err(ClientError::Protocol(format!(
                "expected EXPLAIN, got {other}"
            ))),
        }
    }

    /// `STATS` — server counters.
    pub fn stats(&mut self) -> ClientResult<ServerStats> {
        match self.request(&Request::Stats)? {
            Response::Stats(stats) => Ok(stats),
            Response::Error(msg) => Err(ClientError::Server(msg)),
            other => Err(ClientError::Protocol(format!(
                "expected STATS, got {other}"
            ))),
        }
    }

    /// `CLOSE` — end the session; consumes the client.
    pub fn close(mut self) -> ClientResult<()> {
        match self.request(&Request::Close)? {
            Response::Bye => Ok(()),
            other => Err(ClientError::Protocol(format!("expected BYE, got {other}"))),
        }
    }
}
