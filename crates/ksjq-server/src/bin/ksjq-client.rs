//! Scripted KSJQ protocol client: reads commands from stdin, one per
//! line, prints each response to stdout.
//!
//! ```sh
//! printf 'PREPARE q outbound JOIN inbound K 7\nEXECUTE q\nSTATS\nCLOSE\n' \
//!   | ksjq-client 127.0.0.1:7878
//! ```
//!
//! Exits 0 when every request was answered (including `ERR` answers —
//! they are protocol-level successes; grep the output to assert on
//! content), non-zero on transport failure. Blank lines and `#` comments
//! in the script are skipped.

use ksjq_server::KsjqClient;
use std::io::{BufRead, Write};

fn main() {
    let addr = match std::env::args().nth(1) {
        Some(addr) => addr,
        None => {
            eprintln!("usage: ksjq-client HOST:PORT  (commands on stdin, one per line)");
            std::process::exit(2);
        }
    };
    let mut client = match KsjqClient::connect(&addr) {
        Ok(client) => client,
        Err(e) => {
            eprintln!("ksjq-client: cannot connect to {addr}: {e}");
            std::process::exit(1);
        }
    };
    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        let line = match line {
            Ok(line) => line,
            Err(e) => {
                eprintln!("ksjq-client: stdin: {e}");
                std::process::exit(1);
            }
        };
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        match client.raw(line) {
            Ok(response) => {
                // A closed stdout (e.g. piped into `head`) ends the
                // session cleanly rather than panicking.
                if writeln!(std::io::stdout(), "{response}").is_err() {
                    return;
                }
                if response == "BYE" {
                    return;
                }
            }
            Err(e) => {
                eprintln!("ksjq-client: {e}");
                std::process::exit(1);
            }
        }
    }
}
