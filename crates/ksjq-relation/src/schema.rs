//! Schemas: attribute names, preferences and aggregation roles.

use crate::error::{Error, Result};
use crate::preference::Preference;

/// How an attribute behaves when its relation is joined with another.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttrRole {
    /// The attribute survives the join unchanged ("local" in the paper).
    Local,
    /// The attribute is combined with the attribute occupying the same
    /// `slot` in the other relation (paper Sec. 5.6). Slots must be
    /// `0..a`, each used exactly once per relation.
    Agg(usize),
}

impl AttrRole {
    /// Is this an aggregated attribute?
    #[inline]
    pub fn is_agg(self) -> bool {
        matches!(self, AttrRole::Agg(_))
    }
}

/// Definition of a single skyline attribute.
#[derive(Debug, Clone, PartialEq)]
pub struct AttrDef {
    /// Human-readable attribute name (used in output and CSV headers).
    pub name: String,
    /// Natural optimisation direction of the attribute.
    pub preference: Preference,
    /// Join behaviour of the attribute.
    pub role: AttrRole,
}

/// Schema of a base relation: an ordered list of skyline attributes.
///
/// The join key is *not* a schema attribute — it lives on the
/// [`crate::Relation`] itself (see [`crate::JoinKeys`]) because it never
/// participates in dominance.
#[derive(Debug, Clone, PartialEq)]
pub struct Schema {
    attrs: Vec<AttrDef>,
    /// Number of aggregate slots (`a` in the paper).
    agg_count: usize,
}

impl Schema {
    /// Start building a schema.
    pub fn builder() -> SchemaBuilder {
        SchemaBuilder { attrs: Vec::new() }
    }

    /// Convenience: a schema of `d` anonymous `Min` local attributes, the
    /// shape used throughout the paper's synthetic experiments.
    pub fn uniform(d: usize) -> Result<Schema> {
        let mut b = Schema::builder();
        for i in 0..d {
            b = b.local(format!("s{i}"), Preference::Min);
        }
        b.build()
    }

    /// Convenience: `a` aggregate attributes (slots `0..a`) followed by
    /// `l` local attributes, all `Min`. Mirrors the paper's synthetic
    /// aggregate workloads where `d = a + l`.
    pub fn uniform_agg(a: usize, l: usize) -> Result<Schema> {
        let mut b = Schema::builder();
        for slot in 0..a {
            b = b.agg(format!("g{slot}"), Preference::Min, slot);
        }
        for i in 0..l {
            b = b.local(format!("s{i}"), Preference::Min);
        }
        b.build()
    }

    /// Total number of skyline attributes (`d_i` in the paper).
    #[inline]
    pub fn d(&self) -> usize {
        self.attrs.len()
    }

    /// Number of aggregated attributes (`a`).
    #[inline]
    pub fn agg_count(&self) -> usize {
        self.agg_count
    }

    /// Number of local (non-aggregated) attributes (`l_i = d_i − a`).
    #[inline]
    pub fn local_count(&self) -> usize {
        self.attrs.len() - self.agg_count
    }

    /// The attribute definitions, in declaration order.
    #[inline]
    pub fn attrs(&self) -> &[AttrDef] {
        &self.attrs
    }

    /// Definition of attribute `i`.
    #[inline]
    pub fn attr(&self, i: usize) -> &AttrDef {
        &self.attrs[i]
    }

    /// Indices of local attributes, in order.
    pub fn local_indices(&self) -> impl Iterator<Item = usize> + '_ {
        self.attrs
            .iter()
            .enumerate()
            .filter(|(_, a)| !a.role.is_agg())
            .map(|(i, _)| i)
    }

    /// Index of the attribute occupying aggregate `slot`, if any.
    pub fn agg_index(&self, slot: usize) -> Option<usize> {
        self.attrs
            .iter()
            .position(|a| a.role == AttrRole::Agg(slot))
    }

    /// Look up an attribute index by name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.attrs.iter().position(|a| a.name == name)
    }
}

/// Incremental [`Schema`] construction.
#[derive(Debug, Default)]
pub struct SchemaBuilder {
    attrs: Vec<AttrDef>,
}

impl SchemaBuilder {
    /// Add a local skyline attribute.
    pub fn local(mut self, name: impl Into<String>, preference: Preference) -> Self {
        self.attrs.push(AttrDef {
            name: name.into(),
            preference,
            role: AttrRole::Local,
        });
        self
    }

    /// Add an aggregated skyline attribute bound to `slot`.
    pub fn agg(mut self, name: impl Into<String>, preference: Preference, slot: usize) -> Self {
        self.attrs.push(AttrDef {
            name: name.into(),
            preference,
            role: AttrRole::Agg(slot),
        });
        self
    }

    /// Validate and freeze the schema.
    ///
    /// # Errors
    ///
    /// * [`Error::EmptySchema`] if no attributes were added.
    /// * [`Error::InvalidAggSlot`] if aggregate slots are not exactly the
    ///   set `{0, …, a−1}` with each slot used once.
    pub fn build(self) -> Result<Schema> {
        if self.attrs.is_empty() {
            return Err(Error::EmptySchema);
        }
        let mut slots: Vec<usize> = self
            .attrs
            .iter()
            .filter_map(|a| match a.role {
                AttrRole::Agg(s) => Some(s),
                AttrRole::Local => None,
            })
            .collect();
        slots.sort_unstable();
        for (expected, &got) in slots.iter().enumerate() {
            if expected != got {
                return Err(Error::InvalidAggSlot(format!(
                    "slots must be 0..a, each exactly once; saw slot {got} where {expected} was expected"
                )));
            }
        }
        let agg_count = slots.len();
        Ok(Schema {
            attrs: self.attrs,
            agg_count,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_schema() {
        let s = Schema::uniform(4).unwrap();
        assert_eq!(s.d(), 4);
        assert_eq!(s.agg_count(), 0);
        assert_eq!(s.local_count(), 4);
        assert_eq!(s.attr(2).name, "s2");
    }

    #[test]
    fn uniform_agg_schema() {
        let s = Schema::uniform_agg(2, 3).unwrap();
        assert_eq!(s.d(), 5);
        assert_eq!(s.agg_count(), 2);
        assert_eq!(s.local_count(), 3);
        assert_eq!(s.agg_index(0), Some(0));
        assert_eq!(s.agg_index(1), Some(1));
        assert_eq!(s.local_indices().collect::<Vec<_>>(), vec![2, 3, 4]);
    }

    #[test]
    fn empty_schema_rejected() {
        assert_eq!(Schema::builder().build(), Err(Error::EmptySchema));
    }

    #[test]
    fn duplicate_slot_rejected() {
        let r = Schema::builder()
            .agg("x", Preference::Min, 0)
            .agg("y", Preference::Min, 0)
            .build();
        assert!(matches!(r, Err(Error::InvalidAggSlot(_))));
    }

    #[test]
    fn gap_in_slots_rejected() {
        let r = Schema::builder()
            .agg("x", Preference::Min, 0)
            .agg("y", Preference::Min, 2)
            .build();
        assert!(matches!(r, Err(Error::InvalidAggSlot(_))));
    }

    #[test]
    fn index_of_by_name() {
        let s = Schema::builder()
            .local("cost", Preference::Min)
            .local("rating", Preference::Max)
            .build()
            .unwrap();
        assert_eq!(s.index_of("rating"), Some(1));
        assert_eq!(s.index_of("missing"), None);
    }

    #[test]
    fn mixed_declaration_order_allowed() {
        // Locals and agg attributes may interleave in any order.
        let s = Schema::builder()
            .local("a", Preference::Min)
            .agg("b", Preference::Min, 1)
            .local("c", Preference::Max)
            .agg("d", Preference::Min, 0)
            .build()
            .unwrap();
        assert_eq!(s.agg_count(), 2);
        assert_eq!(s.agg_index(0), Some(3));
        assert_eq!(s.agg_index(1), Some(1));
        assert_eq!(s.local_indices().collect::<Vec<_>>(), vec![0, 2]);
    }
}
