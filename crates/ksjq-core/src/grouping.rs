//! Algorithm 2: the grouping KSJQ algorithm.
//!
//! 1. Classify both base relations into SS/SN/NN (the "grouping time"
//!    component).
//! 2. Emit `SS1 ⋈ SS2` pairs immediately (Table 5's "yes"); prune every
//!    pair with an `NN` component without joining (Theorems 2/4).
//! 3. Verify the "likely" pairs (`SS ⋈ SN` either way) against joins of
//!    the SS leg's target set, and the "may be" pairs (`SN1 ⋈ SN2`)
//!    against joins of the left leg's target set — a sound strengthening
//!    of the paper's full `R1 ⋈ R2` scan, since any dominator's left leg
//!    must pass the target filter (see [`crate::target`]).
//!
//! Deviation from the paper (documented in DESIGN.md §4.5): with two or
//! more aggregate slots Theorem 3 does not hold, so the "yes" fast path is
//! only taken when `a ≤ 1`; otherwise SS⋈SS pairs are verified like
//! "likely" pairs.

use crate::cancel::Checkpoint;
use crate::classify::{classify_parallel, Category, Classification};
use crate::config::Config;
use crate::error::{CoreError, CoreResult};
use crate::output::{finish, KsjqOutput};
use crate::params::validate_k;
use crate::stats::ExecStats;
use crate::target::TargetCache;
use crate::verify::{CheckCounters, ColumnarCheck};
use ksjq_join::JoinContext;
use std::time::Instant;

/// How a candidate pair gets verified.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum CheckKind {
    /// Emit without verification ("yes", sound only when `a ≤ 1`).
    Emit,
    /// Verify against `τ(u′) ⋈ R2`.
    LeftTarget,
    /// Verify against `R1 ⋈ τ(v′)`.
    RightTarget,
}

/// The candidate pairs of one execution, with their joined rows
/// materialised (the "join time" component).
pub(crate) struct Candidates {
    pub kinds: Vec<CheckKind>,
    pub pairs: Vec<(u32, u32)>,
    /// Row-major joined rows, aligned with `pairs`.
    pub rows: Vec<f64>,
    pub d: usize,
}

impl Candidates {
    pub fn row(&self, i: usize) -> &[f64] {
        &self.rows[i * self.d..(i + 1) * self.d]
    }
}

/// Collect and materialise the non-pruned pairs, recording fate classes.
///
/// `verify_yes` forces SS⋈SS pairs through verification instead of
/// emitting them (needed when `a ≥ 2`, and by the dominator-based
/// algorithm's two-sided checks).
pub(crate) fn collect_candidates(
    cx: &JoinContext<'_>,
    cls: &Classification,
    verify_yes: bool,
    stats: &mut ExecStats,
) -> Candidates {
    let d = cx.d_joined();
    let mut c = Candidates {
        kinds: Vec::new(),
        pairs: Vec::new(),
        rows: Vec::new(),
        d,
    };
    let mut row = vec![0.0; d];
    for u in 0..cls.left.len() as u32 {
        let cu = cls.left[u as usize];
        if cu == Category::NN {
            continue;
        }
        // The left-local segment is identical for every partner of `u`:
        // fill it lazily once per tuple, not once per pair.
        let mut left_filled = false;
        for &v in cx.right_partners(u) {
            let kind = match (cu, cls.right[v as usize]) {
                (Category::SS, Category::SS) => {
                    stats.counts.yes_pairs += 1;
                    if verify_yes {
                        CheckKind::LeftTarget
                    } else {
                        CheckKind::Emit
                    }
                }
                (Category::SS, Category::SN) => {
                    stats.counts.likely_pairs += 1;
                    CheckKind::LeftTarget
                }
                (Category::SN, Category::SS) => {
                    stats.counts.likely_pairs += 1;
                    CheckKind::RightTarget
                }
                (Category::SN, Category::SN) => {
                    stats.counts.maybe_pairs += 1;
                    CheckKind::LeftTarget
                }
                _ => continue,
            };
            if !left_filled {
                cx.fill_left(u, &mut row);
                left_filled = true;
            }
            cx.fill_rest(u, v, &mut row);
            c.kinds.push(kind);
            c.pairs.push((u, v));
            c.rows.extend_from_slice(&row);
        }
    }
    c
}

/// Fold a verifier's kernel counters into the execution stats.
pub(crate) fn absorb_counters(stats: &mut ExecStats, c: CheckCounters) {
    stats.counts.dom_tests += c.dom_tests;
    stats.counts.attr_cmps += c.attr_cmps;
    stats.counts.targets_pruned += c.targets_pruned;
}

pub(crate) fn record_tallies(cls: &Classification, stats: &mut ExecStats) {
    let (ss1, sn1, nn1) = cls.tallies(0);
    let (ss2, sn2, nn2) = cls.tallies(1);
    stats.counts.ss = [ss1, ss2];
    stats.counts.sn = [sn1, sn2];
    stats.counts.nn = [nn1, nn2];
}

pub(crate) fn require_strict_aggs(cx: &JoinContext<'_>) -> CoreResult<()> {
    if cx.a() > 0 && !cx.aggs_strictly_monotone() {
        return Err(CoreError::NonStrictAggregate);
    }
    Ok(())
}

/// Run the grouping KSJQ algorithm (paper Algorithm 2), delivering each
/// skyline tuple to `sink` as soon as it is confirmed.
///
/// This is the progressiveness the paper's Sec. 6.1 motivates: "yes"
/// pairs (`SS1 ⋈ SS2`, when Theorem 3 applies) are delivered right after
/// classification — long before any verification work — and verified
/// pairs stream out as their checks complete. The returned output is
/// identical to [`ksjq_grouping`]'s (sorted); the sink sees the same set
/// in confirmation order.
pub fn ksjq_grouping_progressive(
    cx: &JoinContext<'_>,
    k: usize,
    cfg: &Config,
    mut sink: impl FnMut(u32, u32),
) -> CoreResult<KsjqOutput> {
    let params = validate_k(cx, k)?;
    require_strict_aggs(cx)?;
    let mut stats = ExecStats::default();
    stats.counts.joined_pairs = cx.count_pairs();

    let t = Instant::now();
    let cls = classify_parallel(cx, &params, cfg.kdom, cfg.threads);
    record_tallies(&cls, &mut stats);
    stats.phases.grouping = t.elapsed();

    let t = Instant::now();
    let verify_yes = params.a >= 2;
    let cands = collect_candidates(cx, &cls, verify_yes, &mut stats);
    // Emit the unconditional winners immediately.
    for (i, &(u, v)) in cands.pairs.iter().enumerate() {
        if cands.kinds[i] == CheckKind::Emit {
            sink(u, v);
        }
    }
    stats.phases.join = t.elapsed();

    let t = Instant::now();
    let mut ltargets = TargetCache::new(cx.left(), params.k1_pp);
    let mut rtargets = TargetCache::new(cx.right(), params.k2_pp);
    let mut chk = ColumnarCheck::new(cx, k);
    let mut cp = Checkpoint::new(cfg.deadline);
    let mut out = Vec::new();
    for (i, &(u, v)) in cands.pairs.iter().enumerate() {
        cp.tick()?;
        let dominated = match cands.kinds[i] {
            CheckKind::Emit => {
                out.push((u, v)); // already delivered
                continue;
            }
            CheckKind::LeftTarget => chk.dominated_via_left(ltargets.get(u), cands.row(i)),
            CheckKind::RightTarget => chk.dominated_via_right(rtargets.get(v), cands.row(i)),
        };
        if !dominated {
            sink(u, v);
            out.push((u, v));
        }
    }
    absorb_counters(&mut stats, chk.counters());
    stats.phases.remaining = t.elapsed();
    Ok(finish(out, stats))
}

/// Run the grouping KSJQ algorithm (paper Algorithm 2).
pub fn ksjq_grouping(cx: &JoinContext<'_>, k: usize, cfg: &Config) -> CoreResult<KsjqOutput> {
    let params = validate_k(cx, k)?;
    require_strict_aggs(cx)?;
    let mut stats = ExecStats::default();
    stats.counts.joined_pairs = cx.count_pairs();

    // Phase 1: classification ("grouping time"); with cfg.threads > 1 the
    // per-tuple SS/SN refinement shards over workers.
    let t = Instant::now();
    let cls = classify_parallel(cx, &params, cfg.kdom, cfg.threads);
    record_tallies(&cls, &mut stats);
    stats.phases.grouping = t.elapsed();

    // Phase 2: candidate collection + joined-row construction ("join time").
    let t = Instant::now();
    let verify_yes = params.a >= 2;
    let cands = collect_candidates(cx, &cls, verify_yes, &mut stats);
    stats.phases.join = t.elapsed();

    // Phase 3: verification ("remaining"); target sets are built lazily.
    // With cfg.threads > 1 the candidates are verified by parallel workers
    // (the paper's future-work extension, see crate::parallel).
    let t = Instant::now();
    let out = if cfg.threads > 1 {
        let (out, counters) =
            crate::parallel::verify_parallel(cx, k, &params, &cands, cfg.threads, cfg.deadline)?;
        absorb_counters(&mut stats, counters);
        out
    } else {
        let mut ltargets = TargetCache::new(cx.left(), params.k1_pp);
        let mut rtargets = TargetCache::new(cx.right(), params.k2_pp);
        let mut chk = ColumnarCheck::new(cx, k);
        let mut cp = Checkpoint::new(cfg.deadline);
        let mut out = Vec::new();
        for (i, &(u, v)) in cands.pairs.iter().enumerate() {
            cp.tick()?;
            let dominated = match cands.kinds[i] {
                CheckKind::Emit => false,
                CheckKind::LeftTarget => chk.dominated_via_left(ltargets.get(u), cands.row(i)),
                CheckKind::RightTarget => chk.dominated_via_right(rtargets.get(v), cands.row(i)),
            };
            if !dominated {
                out.push((u, v));
            }
        }
        absorb_counters(&mut stats, chk.counters());
        out
    };
    stats.phases.remaining = t.elapsed();
    Ok(finish(out, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::classify;
    use crate::naive::ksjq_naive;
    use ksjq_join::{AggFunc, JoinSpec};
    use ksjq_relation::{Relation, Schema, TupleId};

    fn rel(groups: &[u64], rows: &[Vec<f64>]) -> Relation {
        Relation::from_grouped_rows(Schema::uniform(rows[0].len()).unwrap(), groups, rows).unwrap()
    }

    #[test]
    fn matches_naive_on_small_random() {
        let mut state = 4242u64;
        let mut next = move |m: u64| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) % m
        };
        let n = 70;
        let mk = |next: &mut dyn FnMut(u64) -> u64| {
            let g: Vec<u64> = (0..n).map(|_| next(4)).collect();
            let rows: Vec<Vec<f64>> = (0..n)
                .map(|_| (0..4).map(|_| next(8) as f64).collect())
                .collect();
            rel(&g, &rows)
        };
        let r1 = mk(&mut next);
        let r2 = mk(&mut next);
        let cx = JoinContext::new(&r1, &r2, JoinSpec::Equality, &[]).unwrap();
        let cfg = Config::default();
        for k in 5..=8 {
            let a = ksjq_naive(&cx, k, &cfg).unwrap();
            let b = ksjq_grouping(&cx, k, &cfg).unwrap();
            assert_eq!(a.pairs, b.pairs, "k={k}");
        }
    }

    #[test]
    fn stats_accounting() {
        // One dominator pair per side in group 0; a lone pair in group 1.
        let r1 = rel(
            &[0, 0, 1],
            &[vec![1.0, 1.0], vec![2.0, 2.0], vec![9.0, 9.0]],
        );
        let r2 = rel(&[0, 1], &[vec![1.0, 1.0], vec![1.0, 1.0]]);
        let cx = JoinContext::new(&r1, &r2, JoinSpec::Equality, &[]).unwrap();
        let out = ksjq_grouping(&cx, 3, &Config::default()).unwrap();
        let c = out.stats.counts;
        assert_eq!(c.joined_pairs, 3);
        assert_eq!(c.ss[0] + c.sn[0] + c.nn[0], 3);
        assert_eq!(c.output, out.len());
        assert_eq!(
            c.yes_pairs as u64 + c.likely_pairs as u64 + c.maybe_pairs as u64 + c.pruned_pairs(),
            c.joined_pairs
        );
    }

    /// Regression for the dead counter: `targets_pruned` never incremented
    /// on the grouping path (the old leg-abandon condition was
    /// unsatisfiable by construction of the target set — every member
    /// passes the `k″` filter the abandon re-checked). It now counts the
    /// tuples each candidate's target filter excludes from the scan, so an
    /// anti-correlated workload must report a non-zero value.
    #[test]
    fn targets_pruned_is_nonzero_on_anti_correlated_workload() {
        use ksjq_datagen::{DataType, DatasetSpec};
        let spec = DatasetSpec {
            n: 200,
            agg_attrs: 2,
            local_attrs: 5,
            groups: 5,
            data_type: DataType::AntiCorrelated,
            seed: 11,
        };
        let r1 = spec.generate();
        let r2 = DatasetSpec { seed: 1011, ..spec }.generate();
        let cx =
            JoinContext::new(&r1, &r2, JoinSpec::Equality, &[AggFunc::Sum, AggFunc::Sum]).unwrap();
        let out = ksjq_grouping(&cx, 11, &Config::default()).unwrap();
        let c = out.stats.counts;
        assert!(
            c.likely_pairs + c.maybe_pairs > 0,
            "workload must exercise verification: {c:?}"
        );
        assert!(c.targets_pruned > 0, "{c:?}");
        // And the parallel path reports the identical value.
        let threaded = ksjq_grouping(&cx, 11, &Config::with_threads(3)).unwrap();
        assert_eq!(threaded.stats.counts.targets_pruned, c.targets_pruned);
    }

    #[test]
    fn rejects_non_strict_aggregates() {
        let schema = || Schema::uniform_agg(1, 2).unwrap();
        let mut b1 = Relation::builder(schema());
        b1.add_grouped(0, &[1.0, 1.0, 1.0]).unwrap();
        let r1 = b1.build().unwrap();
        let mut b2 = Relation::builder(schema());
        b2.add_grouped(0, &[1.0, 1.0, 1.0]).unwrap();
        let r2 = b2.build().unwrap();
        let cx = JoinContext::new(&r1, &r2, JoinSpec::Equality, &[AggFunc::Max]).unwrap();
        let e = ksjq_grouping(&cx, 4, &Config::default()).unwrap_err();
        assert_eq!(e, CoreError::NonStrictAggregate);
        // The naive algorithm accepts it.
        assert!(ksjq_naive(&cx, 4, &Config::default()).is_ok());
    }

    /// The concrete Theorem-3 counterexample for `a = 2` from DESIGN.md
    /// §4.5: all four base tuples are SS, yet `u ⋈ v ≻₄ u′ ⋈ v′`. The
    /// grouping algorithm must verify (not blindly emit) SS⋈SS here.
    #[test]
    fn theorem3_counterexample_with_two_aggregates() {
        let schema = || Schema::uniform_agg(2, 1).unwrap(); // g0, g1, s0
        let mk = |rows: &[[f64; 3]]| {
            let mut b = Relation::builder(schema());
            for r in rows {
                // Schema order: agg g0, agg g1, local s0 — rows given as
                // (local, agg1, agg2) in the DESIGN.md example.
                b.add_grouped(0, &[r[1], r[2], r[0]]).unwrap();
            }
            b.build().unwrap()
        };
        let r1 = mk(&[[5.0, 5.0, 5.0], [5.0, 4.0, 7.0]]); // u′, u
        let r2 = mk(&[[5.0, 5.0, 5.0], [5.0, 6.0, 2.0]]); // v′, v
        let cx =
            JoinContext::new(&r1, &r2, JoinSpec::Equality, &[AggFunc::Sum, AggFunc::Sum]).unwrap();
        let k = 4;
        // Sanity: the classification really is all-SS.
        let p = validate_k(&cx, k).unwrap();
        let cls = classify(&cx, &p, ksjq_skyline::KdomAlgo::Naive);
        assert!(
            cls.left.iter().all(|c| *c == Category::SS),
            "{:?}",
            cls.left
        );
        assert!(
            cls.right.iter().all(|c| *c == Category::SS),
            "{:?}",
            cls.right
        );
        // And u ⋈ v really dominates u′ ⋈ v′.
        assert!(ksjq_relation::k_dominates(
            &cx.joined_row(1, 1),
            &cx.joined_row(0, 0),
            k
        ));
        // Both algorithms agree and exclude (u′, v′).
        let naive = ksjq_naive(&cx, k, &Config::default()).unwrap();
        let grouping = ksjq_grouping(&cx, k, &Config::default()).unwrap();
        assert_eq!(naive.pairs, grouping.pairs);
        assert!(!grouping.contains(0, 0));
        assert!(grouping.contains(1, 1));
    }

    #[test]
    fn cartesian_fast_path() {
        let mk = |rows: &[Vec<f64>]| {
            let mut b = Relation::builder(Schema::uniform(2).unwrap());
            for r in rows {
                b.add(r).unwrap();
            }
            b.build().unwrap()
        };
        let r1 = mk(&[vec![1.0, 2.0], vec![2.0, 1.0], vec![3.0, 3.0]]);
        let r2 = mk(&[vec![1.0, 1.0], vec![5.0, 5.0]]);
        let cx = JoinContext::new(&r1, &r2, JoinSpec::Cartesian, &[]).unwrap();
        let cfg = Config::default();
        for k in 3..=4 {
            let a = ksjq_naive(&cx, k, &cfg).unwrap();
            let b = ksjq_grouping(&cx, k, &cfg).unwrap();
            assert_eq!(a.pairs, b.pairs, "k={k}");
            // Sec. 6.5: no SN tuples ⇒ no likely/maybe work at all.
            assert_eq!(b.stats.counts.likely_pairs, 0);
            assert_eq!(b.stats.counts.maybe_pairs, 0);
        }
    }

    #[test]
    fn progressive_delivers_yes_first_and_matches_batch() {
        let mut state = 314u64;
        let mut next = move |m: u64| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) % m
        };
        let n = 80;
        let mk = |next: &mut dyn FnMut(u64) -> u64| {
            let g: Vec<u64> = (0..n).map(|_| next(4)).collect();
            let rows: Vec<Vec<f64>> = (0..n)
                .map(|_| (0..4).map(|_| next(8) as f64).collect())
                .collect();
            rel(&g, &rows)
        };
        let r1 = mk(&mut next);
        let r2 = mk(&mut next);
        let cx = JoinContext::new(&r1, &r2, JoinSpec::Equality, &[]).unwrap();
        let cfg = Config::default();
        for k in 5..=7 {
            let batch = ksjq_grouping(&cx, k, &cfg).unwrap();
            let mut streamed = Vec::new();
            let prog =
                ksjq_grouping_progressive(&cx, k, &cfg, |u, v| streamed.push((u, v))).unwrap();
            assert_eq!(prog.pairs, batch.pairs, "k={k}");
            // Same set, delivered exactly once each.
            let mut sorted = streamed.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), streamed.len(), "k={k}: duplicate delivery");
            let as_pairs: Vec<_> = sorted
                .iter()
                .map(|&(u, v)| (TupleId(u), TupleId(v)))
                .collect();
            assert_eq!(as_pairs, batch.pairs, "k={k}");
            // Every "yes" pair precedes every verified pair in the stream.
            let cls = classify(&cx, &validate_k(&cx, k).unwrap(), cfg.kdom);
            let is_yes = |&(u, v): &(u32, u32)| {
                cls.left[u as usize] == Category::SS && cls.right[v as usize] == Category::SS
            };
            let first_nonyes = streamed.iter().position(|p| !is_yes(p));
            if let Some(cut) = first_nonyes {
                assert!(
                    streamed[cut..].iter().all(|p| !is_yes(p)),
                    "k={k}: yes pair delivered after a verified pair"
                );
            }
        }
    }

    #[test]
    fn paper_table3_final_skyline() {
        use ksjq_datagen::paper_flights;
        let pf = paper_flights(false);
        let cx = JoinContext::new(&pf.outbound, &pf.inbound, JoinSpec::Equality, &[]).unwrap();
        let out = ksjq_grouping(&cx, 7, &Config::default()).unwrap();
        // Table 3: (11,23), (13,21), (15,25), (16,26) — ids are fno − 11 / − 21.
        let expected = vec![
            (TupleId(0), TupleId(2)),
            (TupleId(2), TupleId(0)),
            (TupleId(4), TupleId(4)),
            (TupleId(5), TupleId(5)),
        ];
        assert_eq!(out.pairs, expected);
    }
}
