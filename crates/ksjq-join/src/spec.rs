//! Join specifications.

use std::fmt;

/// Comparison operator of a non-equality join condition
/// `left.key OP right.key` (paper Sec. 6.6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ThetaOp {
    /// `left.key < right.key` — e.g. first leg arrives before the second
    /// departs.
    Lt,
    /// `left.key <= right.key`.
    Le,
    /// `left.key > right.key`.
    Gt,
    /// `left.key >= right.key`.
    Ge,
}

impl ThetaOp {
    /// Does the condition hold for the given key values?
    #[inline]
    pub fn holds(self, left: f64, right: f64) -> bool {
        match self {
            ThetaOp::Lt => left < right,
            ThetaOp::Le => left <= right,
            ThetaOp::Gt => left > right,
            ThetaOp::Ge => left >= right,
        }
    }

    /// The same condition seen from the right side:
    /// `right.key OP.flip() left.key`.
    #[inline]
    pub fn flip(self) -> ThetaOp {
        match self {
            ThetaOp::Lt => ThetaOp::Gt,
            ThetaOp::Le => ThetaOp::Ge,
            ThetaOp::Gt => ThetaOp::Lt,
            ThetaOp::Ge => ThetaOp::Le,
        }
    }
}

impl fmt::Display for ThetaOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ThetaOp::Lt => "<",
            ThetaOp::Le => "<=",
            ThetaOp::Gt => ">",
            ThetaOp::Ge => ">=",
        };
        write!(f, "{s}")
    }
}

/// Which join connects the two base relations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum JoinSpec {
    /// Equality on the group-key column (paper Assumption 1); the default
    /// and the setting of all of the paper's experiments.
    #[default]
    Equality,
    /// Non-equality condition `left.key OP right.key` on the numeric-key
    /// columns (Sec. 6.6).
    Theta(ThetaOp),
    /// Every left tuple joins every right tuple (Sec. 6.5). Key columns
    /// are ignored.
    Cartesian,
}

impl fmt::Display for JoinSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JoinSpec::Equality => write!(f, "equality"),
            JoinSpec::Theta(op) => write!(f, "theta({op})"),
            JoinSpec::Cartesian => write!(f, "cartesian"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn theta_semantics() {
        assert!(ThetaOp::Lt.holds(1.0, 2.0));
        assert!(!ThetaOp::Lt.holds(2.0, 2.0));
        assert!(ThetaOp::Le.holds(2.0, 2.0));
        assert!(ThetaOp::Gt.holds(3.0, 2.0));
        assert!(ThetaOp::Ge.holds(2.0, 2.0));
        assert!(!ThetaOp::Ge.holds(1.0, 2.0));
    }

    #[test]
    fn flip_is_involutive_and_consistent() {
        for op in [ThetaOp::Lt, ThetaOp::Le, ThetaOp::Gt, ThetaOp::Ge] {
            assert_eq!(op.flip().flip(), op);
            for (l, r) in [(1.0, 2.0), (2.0, 2.0), (3.0, 2.0)] {
                assert_eq!(op.holds(l, r), op.flip().holds(r, l), "{op} {l} {r}");
            }
        }
    }

    #[test]
    fn default_is_equality() {
        assert_eq!(JoinSpec::default(), JoinSpec::Equality);
    }

    #[test]
    fn display() {
        assert_eq!(JoinSpec::Theta(ThetaOp::Lt).to_string(), "theta(<)");
        assert_eq!(JoinSpec::Cartesian.to_string(), "cartesian");
    }
}
