//! Owned, logical query descriptions.
//!
//! A [`QueryPlan`] is everything a KSJQ query *is*, with none of what it
//! *runs on*: relation names (or handles), the join, the aggregation
//! functions, a [`Goal`], an algorithm choice and a [`Config`] override.
//! It owns all of its parts — no lifetimes — so it can be built once,
//! cloned, stored, logged (it implements `Display`) and prepared against
//! an [`Engine`](crate::engine::Engine) from any thread, any number of
//! times.
//!
//! Binding a plan to data happens in
//! [`Engine::prepare`](crate::engine::Engine::prepare), which resolves the
//! relation references against the engine's catalog, validates the join
//! and `k`, and returns an executable
//! [`PreparedQuery`](crate::engine::PreparedQuery).

use crate::config::Config;
use crate::find_k::FindKStrategy;
use crate::query::Algorithm;
use ksjq_join::{AggFunc, JoinSpec};
use ksjq_relation::RelationHandle;
use ksjq_skyline::KdomAlgo;
use std::fmt;

/// How a plan refers to a base relation: by catalog name (resolved at
/// prepare time) or by a [`RelationHandle`] (self-contained — usable even
/// if the relation was never registered with the preparing engine).
#[derive(Debug, Clone)]
pub enum RelationRef {
    /// Look the relation up in the engine's catalog at prepare time.
    Name(String),
    /// Use this handle directly.
    Handle(RelationHandle),
}

impl RelationRef {
    /// The name this reference displays as (the catalog name in both
    /// forms).
    pub fn name(&self) -> &str {
        match self {
            RelationRef::Name(n) => n,
            RelationRef::Handle(h) => h.name(),
        }
    }
}

impl From<&str> for RelationRef {
    fn from(name: &str) -> Self {
        RelationRef::Name(name.to_owned())
    }
}

impl From<String> for RelationRef {
    fn from(name: String) -> Self {
        RelationRef::Name(name)
    }
}

impl From<&RelationHandle> for RelationRef {
    fn from(handle: &RelationHandle) -> Self {
        RelationRef::Handle(handle.clone())
    }
}

impl From<RelationHandle> for RelationRef {
    fn from(handle: RelationHandle) -> Self {
        RelationRef::Handle(handle)
    }
}

impl fmt::Display for RelationRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.name())
    }
}

/// What the query asks for — the four problems of the paper as one enum.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Goal {
    /// Problems 1/2: the k-dominant skyline join at exactly this `k`.
    Exact(usize),
    /// The ordinary skyline join: `k = d1 + d2 − a`, the largest
    /// admissible value. The default.
    #[default]
    SkylineJoin,
    /// Problem 3: the smallest `k` whose skyline has at least `delta`
    /// tuples, found with the given strategy.
    AtLeast(usize, FindKStrategy),
    /// Problem 4: the largest `k` whose skyline has at most `delta`
    /// tuples, found with the given strategy.
    AtMost(usize, FindKStrategy),
}

impl fmt::Display for Goal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Goal::Exact(k) => write!(f, "exact k = {k}"),
            Goal::SkylineJoin => write!(f, "skyline join (maximum k)"),
            Goal::AtLeast(delta, s) => write!(f, "at least {delta} tuples ({s} search)"),
            Goal::AtMost(delta, s) => write!(f, "at most {delta} tuples ({s} search)"),
        }
    }
}

impl std::str::FromStr for Goal {
    type Err = String;

    /// Parse a goal. Round-trips with [`Display`](fmt::Display) (`"exact
    /// k = 7"`, `"skyline join (maximum k)"`, `"at least 10 tuples (binary
    /// search)"`, …) and also accepts compact, whitespace-free spellings
    /// convenient for flags and wire protocols:
    ///
    /// * `exact:7`, `k=7` or a bare `7` — [`Goal::Exact`];
    /// * `skyline` or `skyline-join` — [`Goal::SkylineJoin`];
    /// * `atleast:10` / `atleast:10:range` — [`Goal::AtLeast`] (strategy
    ///   defaults to binary search);
    /// * `atmost:10` / `atmost:10:naive` — [`Goal::AtMost`].
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let lower = s.trim().to_ascii_lowercase();
        // Tokenise on every separator either spelling uses, then drop the
        // filler words of the Display form ("k", "tuples", "search").
        let tokens: Vec<&str> = lower
            .split(['\u{20}', ':', '=', ',', '(', ')', '\t'])
            .filter(|t| !t.is_empty() && !matches!(*t, "k" | "tuples" | "tuple" | "search"))
            .collect();
        let err = || {
            format!("unknown goal {s:?} (expected exact:K, skyline, atleast:D[:STRATEGY] or atmost:D[:STRATEGY])")
        };
        // Strict by construction: every token must be consumed by the
        // grammar. A misspelt strategy or trailing junk is an error, not
        // a silent fall-back to the defaults.
        let find_k = |rest: &[&str], make: fn(usize, FindKStrategy) -> Goal| match rest {
            [delta] => delta
                .parse::<usize>()
                .map(|d| make(d, FindKStrategy::default()))
                .map_err(|_| err()),
            [delta, strategy] => {
                let delta = delta.parse::<usize>().map_err(|_| err())?;
                let strategy = strategy.parse::<FindKStrategy>().map_err(|_| err())?;
                Ok(make(delta, strategy))
            }
            _ => Err(err()),
        };
        match tokens.as_slice() {
            ["skyline" | "skyline-join" | "skyline_join"]
            | ["skyline", "join"]
            | ["skyline", "join", "maximum"] => Ok(Goal::SkylineJoin),
            ["exact", k] | [k] => k.parse::<usize>().map(Goal::Exact).map_err(|_| err()),
            ["at", "least", rest @ ..] | ["atleast" | "at-least" | "at_least", rest @ ..] => {
                find_k(rest, Goal::AtLeast)
            }
            ["at", "most", rest @ ..] | ["atmost" | "at-most" | "at_most", rest @ ..] => {
                find_k(rest, Goal::AtMost)
            }
            _ => Err(err()),
        }
    }
}

/// A fully owned logical KSJQ query description. See the [module
/// docs](self) for where it sits in the engine/plan/execution split.
///
/// All fields are public — a plan is plain data — but the chainable
/// builder-style methods are the intended way to write one:
///
/// ```
/// use ksjq_core::{Algorithm, Goal, QueryPlan};
/// use ksjq_join::{AggFunc, JoinSpec};
///
/// let plan = QueryPlan::new("outbound", "inbound")
///     .join(JoinSpec::Equality)
///     .aggregates(&[AggFunc::Sum, AggFunc::Sum])
///     .goal(Goal::Exact(6))
///     .algorithm(Algorithm::Grouping);
/// assert_eq!(plan.to_string(), r#"ksjq("outbound" ⋈ "inbound" [equality], aggs = [sum, sum], exact k = 6, grouping)"#);
/// ```
#[derive(Debug, Clone)]
pub struct QueryPlan {
    /// The left base relation.
    pub left: RelationRef,
    /// The right base relation.
    pub right: RelationRef,
    /// The join connecting them (default: equality).
    pub spec: JoinSpec,
    /// Aggregation functions, one per paired slot, slot order.
    pub funcs: Vec<AggFunc>,
    /// What to compute (default: the ordinary skyline join).
    pub goal: Goal,
    /// Which KSJQ algorithm executes the query (default: grouping).
    pub algorithm: Algorithm,
    /// Single-relation k-dominant skyline subroutine override; merged
    /// onto the effective config at prepare time, so it composes with an
    /// engine-level [`Config`] instead of replacing it.
    pub kdom: Option<KdomAlgo>,
    /// Execution-config override; `None` uses the engine's default.
    pub config: Option<Config>,
}

impl QueryPlan {
    /// A plan joining `left ⋈ right` with all defaults: equality join, no
    /// aggregation, ordinary skyline join, grouping algorithm, engine
    /// config.
    pub fn new(left: impl Into<RelationRef>, right: impl Into<RelationRef>) -> Self {
        QueryPlan {
            left: left.into(),
            right: right.into(),
            spec: JoinSpec::Equality,
            funcs: Vec::new(),
            goal: Goal::default(),
            algorithm: Algorithm::default(),
            kdom: None,
            config: None,
        }
    }

    /// Join kind.
    pub fn join(mut self, spec: JoinSpec) -> Self {
        self.spec = spec;
        self
    }

    /// Append the aggregation function for the next slot (call once per
    /// slot, in slot order), or use [`aggregates`](Self::aggregates).
    pub fn aggregate(mut self, func: AggFunc) -> Self {
        self.funcs.push(func);
        self
    }

    /// Aggregation functions for all slots at once.
    pub fn aggregates(mut self, funcs: &[AggFunc]) -> Self {
        self.funcs = funcs.to_vec();
        self
    }

    /// The query goal.
    pub fn goal(mut self, goal: Goal) -> Self {
        self.goal = goal;
        self
    }

    /// Shorthand for [`goal(Goal::Exact(k))`](Self::goal).
    pub fn k(self, k: usize) -> Self {
        self.goal(Goal::Exact(k))
    }

    /// Algorithm choice.
    pub fn algorithm(mut self, algorithm: Algorithm) -> Self {
        self.algorithm = algorithm;
        self
    }

    /// Single-relation k-dominant skyline subroutine. Unlike
    /// [`config`](Self::config) this overrides *only* the subroutine —
    /// the engine's other config knobs (threads, materialisation limit)
    /// stay in effect.
    pub fn kdom(mut self, kdom: KdomAlgo) -> Self {
        self.kdom = Some(kdom);
        self
    }

    /// Full execution-config override.
    pub fn config(mut self, config: Config) -> Self {
        self.config = Some(config);
        self
    }
}

impl fmt::Display for QueryPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ksjq({} ⋈ {} [{}]", self.left, self.right, self.spec)?;
        if !self.funcs.is_empty() {
            write!(f, ", aggs = [")?;
            for (i, func) in self.funcs.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{func}")?;
            }
            write!(f, "]")?;
        }
        write!(f, ", {}, {})", self.goal, self.algorithm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_legacy_builder() {
        let p = QueryPlan::new("a", "b");
        assert_eq!(p.spec, JoinSpec::Equality);
        assert!(p.funcs.is_empty());
        assert_eq!(p.goal, Goal::SkylineJoin);
        assert_eq!(p.algorithm, Algorithm::Grouping);
        assert!(p.config.is_none());
    }

    #[test]
    fn plan_is_owned_and_shareable() {
        fn assert_send_sync_static<T: Send + Sync + 'static>() {}
        assert_send_sync_static::<QueryPlan>();
        assert_send_sync_static::<Goal>();
        assert_send_sync_static::<RelationRef>();
    }

    #[test]
    fn display_forms() {
        let p = QueryPlan::new("l", "r").k(7);
        assert_eq!(
            p.to_string(),
            r#"ksjq("l" ⋈ "r" [equality], exact k = 7, grouping)"#
        );
        assert_eq!(Goal::SkylineJoin.to_string(), "skyline join (maximum k)");
        assert_eq!(
            Goal::AtLeast(10, crate::FindKStrategy::Binary).to_string(),
            "at least 10 tuples (binary search)"
        );
    }

    #[test]
    fn goal_from_str_roundtrips_display() {
        use crate::FindKStrategy;
        for goal in [
            Goal::Exact(7),
            Goal::SkylineJoin,
            Goal::AtLeast(10, FindKStrategy::Naive),
            Goal::AtLeast(250, FindKStrategy::Range),
            Goal::AtMost(1, FindKStrategy::Binary),
        ] {
            assert_eq!(goal.to_string().parse::<Goal>().unwrap(), goal, "{goal}");
        }
    }

    #[test]
    fn goal_from_str_compact_forms() {
        use crate::FindKStrategy;
        assert_eq!("exact:7".parse::<Goal>().unwrap(), Goal::Exact(7));
        assert_eq!("k=7".parse::<Goal>().unwrap(), Goal::Exact(7));
        assert_eq!("7".parse::<Goal>().unwrap(), Goal::Exact(7));
        assert_eq!("skyline".parse::<Goal>().unwrap(), Goal::SkylineJoin);
        assert_eq!("Skyline-Join".parse::<Goal>().unwrap(), Goal::SkylineJoin);
        assert_eq!(
            "atleast:10".parse::<Goal>().unwrap(),
            Goal::AtLeast(10, FindKStrategy::Binary) // binary is the default
        );
        assert_eq!(
            "atleast:10:range".parse::<Goal>().unwrap(),
            Goal::AtLeast(10, FindKStrategy::Range)
        );
        assert_eq!(
            "at-most:3:naive".parse::<Goal>().unwrap(),
            Goal::AtMost(3, FindKStrategy::Naive)
        );
    }

    #[test]
    fn goal_from_str_rejects_junk() {
        for bad in [
            "",
            "bogus",
            "exact",
            "atleast",
            "atmost:",
            "7 8",
            "k=",
            "exact:7:junk",       // trailing junk
            "atleast:10:nieve",   // misspelt strategy must not default away
            "atmost:10:binary:x", // over-long
            "skyline extra",
        ] {
            assert!(bad.parse::<Goal>().is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn kdom_is_a_point_override_not_a_config() {
        let p = QueryPlan::new("l", "r").kdom(KdomAlgo::Osa);
        assert_eq!(p.kdom, Some(KdomAlgo::Osa));
        assert!(p.config.is_none()); // engine config stays in effect
    }
}
