//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark framework.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the API subset its `benches/` use: [`Criterion`], [`BenchmarkGroup`]
//! (`sample_size`, `throughput`, `bench_function`, `bench_with_input`,
//! `finish`), [`BenchmarkId`], [`Bencher::iter`], [`Throughput`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Measurement is deliberately simple: each benchmark is warmed up once,
//! then timed for `sample_size` samples whose iteration counts target a
//! fixed per-sample budget; the mean/min/max are printed in a
//! criterion-like format. Under `cargo test` (the runner passes `--test`)
//! or `cargo bench -- --test`, each benchmark runs exactly one iteration
//! as a smoke test. Statistical analysis, plots and baselines are out of
//! scope — this exists so the figure benches compile, run and report
//! stable wall-clock numbers without the real dependency.

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Prevent the optimiser from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Per-sample time budget used to pick iteration counts in bench mode.
const SAMPLE_BUDGET: Duration = Duration::from_millis(50);

/// Top-level benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    test_mode: bool,
    filter: Option<String>,
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            test_mode: false,
            filter: None,
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Parse the CLI arguments cargo's bench/test runners pass
    /// (`--bench`, `--test`, an optional name filter; everything else is
    /// ignored).
    #[must_use]
    pub fn configure_from_args(mut self) -> Self {
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--test" => self.test_mode = true,
                "--bench" | "--exact" | "--nocapture" | "-q" | "--quiet" => {}
                // Value-taking flags: consume the value so it is not
                // mistaken for a name filter (e.g. `--skip kernel` must
                // not run ONLY the kernel benches).
                "--color" | "--skip" | "--logfile" | "--format" => {
                    let _ = args.next();
                }
                s if s.starts_with('-') => {}
                s => self.filter = Some(s.to_string()),
            }
        }
        self
    }

    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.default_sample_size = n.max(2);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.default_sample_size;
        self.run_one(&id.into_benchmark_id().0, sample_size, f);
        self
    }

    fn run_one<F>(&mut self, name: &str, sample_size: usize, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            test_mode: self.test_mode,
            sample_size,
            samples: Vec::new(),
        };
        f(&mut bencher);
        bencher.report(name);
    }
}

/// A named group of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(2));
        self
    }

    pub fn throughput(&mut self, _throughput: Throughput) -> &mut Self {
        // Recorded for API compatibility; per-element rates are not printed.
        self
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id().0);
        let sample_size = self
            .sample_size
            .unwrap_or(self.criterion.default_sample_size);
        self.criterion.run_one(&full, sample_size, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    pub fn finish(self) {}
}

/// A benchmark identifier: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId(format!("{}/{}", function_name.into(), parameter))
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

/// Conversion into a [`BenchmarkId`], so benches can pass `&str`,
/// `String` or an explicit id.
pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId(self.to_string())
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId(self)
    }
}

/// Throughput annotation (accepted, not reported).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Runs the closure under measurement.
#[derive(Debug)]
pub struct Bencher {
    test_mode: bool,
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.test_mode {
            black_box(f());
            return;
        }
        // Warm up and size the per-sample iteration count.
        let start = Instant::now();
        black_box(f());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let iters = (SAMPLE_BUDGET.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u32;
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            self.samples.push(start.elapsed() / iters);
        }
    }

    fn report(&self, name: &str) {
        if self.test_mode {
            println!("test {name} ... ok");
            return;
        }
        if self.samples.is_empty() {
            println!("{name:<60} (no samples)");
            return;
        }
        let min = self.samples.iter().min().unwrap();
        let max = self.samples.iter().max().unwrap();
        let mean = self.samples.iter().sum::<Duration>() / self.samples.len() as u32;
        println!(
            "{name:<60} time: [{} {} {}]",
            fmt_duration(*min),
            fmt_duration(mean),
            fmt_duration(*max)
        );
    }
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.3} µs", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.3} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.3} s", nanos as f64 / 1_000_000_000.0)
    }
}

/// Define a benchmark group function callable from [`criterion_main!`].
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config.configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Define the bench binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
