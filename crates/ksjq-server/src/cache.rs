//! An LRU result cache keyed by normalised plan fingerprint.
//!
//! `EXECUTE`/`QUERY` results are immutable once computed (relations are
//! immutable after registration and every algorithm is deterministic), so
//! the server can answer a repeated plan from memory. Invalidation is
//! per-relation: each entry records the relation names its fingerprint
//! references, and registering (or re-registering) a name evicts only the
//! entries that mention it — unrelated cached plans survive a `LOAD`.
//!
//! Entries are also addressable by a server-assigned `u64` result id.
//! That id is what protocol-v2 cursors carry: `MORE <id>:<part>` pages a
//! chunk out of a cached result long after the `EXECUTE` that computed it
//! finished, without the connection holding any per-result state.
//!
//! `APPEND` adds a third lifecycle besides hit and evict: *upgrade*. An
//! entry that recorded its [`PlanSpec`] can be re-pointed at a result the
//! incremental maintainer produced for the new catalog epoch — same key,
//! same recency, **new** result id (cursors into the old result must die:
//! `MORE` pages are positional, and the pair list just changed).
//!
//! Recency is tracked with a monotone tick per entry; eviction scans for
//! the minimum. That is O(capacity) per insert-when-full, which for the
//! intended capacities (tens to a few thousand entries of whole query
//! results) is noise next to the skyline computation a miss costs.

use crate::protocol::PlanSpec;
use ksjq_core::KsjqOutput;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Hit/miss/eviction counters, readable without the cache lock.
#[derive(Debug, Default)]
pub struct CacheCounters {
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl CacheCounters {
    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Evictions so far (capacity pressure only — invalidation clears are
    /// not evictions).
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }
}

/// One cache entry snapshotted for the `APPEND` maintenance pass (see
/// [`ResultCache::entries_for_relation`]).
#[derive(Debug, Clone)]
pub struct UpgradeCandidate {
    /// Fingerprint key of the entry.
    pub key: String,
    /// Result id at snapshot time — [`ResultCache::upgrade`] requires it
    /// unchanged, so a racing overwrite invalidates the candidate.
    pub id: u64,
    /// The `k` the cached result was computed under.
    pub k: usize,
    /// The producing plan, when the entry was inserted upgradable.
    pub plan: Option<PlanSpec>,
    /// The cached result at epoch E (the maintainer's input).
    pub output: Arc<KsjqOutput>,
}

/// A cached query result: the output plus the identity a v2 cursor needs.
#[derive(Debug, Clone)]
pub struct CachedResult {
    /// Server-assigned id, stable for the entry's lifetime — the
    /// `<result>` half of a `MORE <result>:<part>` cursor.
    pub id: u64,
    /// The `k` the result was computed under (echoed in every chunk).
    pub k: usize,
    /// The skyline-join output itself.
    pub output: Arc<KsjqOutput>,
}

#[derive(Debug)]
struct Entry {
    id: u64,
    k: usize,
    /// Relation names the fingerprint references (for per-relation
    /// invalidation).
    refs: Vec<String>,
    /// The plan that produced the value, kept when the caller wants the
    /// entry to be *upgradable* by the incremental maintainer after an
    /// `APPEND` (`None` entries can only be invalidated).
    plan: Option<PlanSpec>,
    value: Arc<KsjqOutput>,
    last_used: u64,
}

impl Entry {
    fn result(&self) -> CachedResult {
        CachedResult {
            id: self.id,
            k: self.k,
            output: self.value.clone(),
        }
    }
}

#[derive(Debug, Default)]
struct Inner {
    map: HashMap<String, Entry>,
    tick: u64,
    next_id: u64,
}

/// A thread-safe LRU cache from plan fingerprint to query result.
///
/// Capacity 0 disables caching (every lookup misses, inserts are
/// dropped) — useful for benchmarking the uncached path.
#[derive(Debug)]
pub struct ResultCache {
    inner: Mutex<Inner>,
    capacity: usize,
    counters: CacheCounters,
}

impl ResultCache {
    /// A cache holding at most `capacity` results.
    pub fn new(capacity: usize) -> Self {
        ResultCache {
            inner: Mutex::new(Inner::default()),
            capacity,
            counters: CacheCounters::default(),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Look up `key`, refreshing its recency on a hit.
    pub fn get(&self, key: &str) -> Option<CachedResult> {
        let mut inner = self.lock();
        inner.tick += 1;
        let tick = inner.tick;
        match inner.map.get_mut(key) {
            Some(entry) => {
                entry.last_used = tick;
                self.counters.hits.fetch_add(1, Ordering::Relaxed);
                Some(entry.result())
            }
            None => {
                self.counters.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Look up a result by its server-assigned id (cursor resolution),
    /// refreshing recency. Does not touch the hit/miss counters: a dead
    /// cursor is a protocol condition, not a cache miss.
    pub fn by_id(&self, id: u64) -> Option<CachedResult> {
        let mut inner = self.lock();
        inner.tick += 1;
        let tick = inner.tick;
        inner.map.values_mut().find(|e| e.id == id).map(|entry| {
            entry.last_used = tick;
            entry.result()
        })
    }

    /// Insert `value` under `key`, evicting the least-recently-used entry
    /// if the cache is full. `refs` are the relation names the plan
    /// touches (for [`invalidate_relation`](Self::invalidate_relation));
    /// `k` is echoed back in chunk frames served from the entry.
    ///
    /// Returns the assigned result id, or `None` when caching is
    /// disabled (capacity 0) — such results cannot be paged with `MORE`.
    pub fn insert(
        &self,
        key: String,
        value: Arc<KsjqOutput>,
        k: usize,
        refs: Vec<String>,
        plan: Option<PlanSpec>,
    ) -> Option<u64> {
        if self.capacity == 0 {
            return None;
        }
        let mut inner = self.lock();
        inner.tick += 1;
        inner.next_id += 1;
        let tick = inner.tick;
        let id = inner.next_id;
        if !inner.map.contains_key(&key) && inner.map.len() >= self.capacity {
            if let Some(lru) = inner
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                inner.map.remove(&lru);
                self.counters.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        inner.map.insert(
            key,
            Entry {
                id,
                k,
                refs,
                plan,
                value,
                last_used: tick,
            },
        );
        Some(id)
    }

    /// Snapshot every entry whose plan references relation `name`, for
    /// the `APPEND` maintenance pass: the caller decides per entry
    /// whether to [`upgrade`](Self::upgrade) it with a maintained result
    /// or [`remove`](Self::remove) it. The snapshot is taken under the
    /// lock but maintenance runs outside it, so each candidate carries
    /// the entry id it was taken at — `upgrade` is a no-op if the entry
    /// was replaced or evicted in between.
    pub fn entries_for_relation(&self, name: &str) -> Vec<UpgradeCandidate> {
        let inner = self.lock();
        inner
            .map
            .iter()
            .filter(|(_, e)| e.refs.iter().any(|r| r == name))
            .map(|(key, e)| UpgradeCandidate {
                key: key.clone(),
                id: e.id,
                k: e.k,
                plan: e.plan.clone(),
                output: e.value.clone(),
            })
            .collect()
    }

    /// Re-point the entry under `key` at a maintained `value` — same key
    /// and recency, fresh result id (positional `MORE` cursors into the
    /// old value must expire). Applies only while the entry still carries
    /// `expected_id`; a concurrent overwrite or eviction wins otherwise.
    /// Not an eviction (those track capacity pressure only). Returns the
    /// new result id, or `None` when nothing was upgraded.
    pub fn upgrade(&self, key: &str, expected_id: u64, value: Arc<KsjqOutput>) -> Option<u64> {
        let mut inner = self.lock();
        inner.next_id += 1;
        let id = inner.next_id;
        match inner.map.get_mut(key) {
            Some(entry) if entry.id == expected_id => {
                entry.id = id;
                entry.value = value;
                Some(id)
            }
            _ => None,
        }
    }

    /// Drop the entry under `key` (e.g. a non-upgradable plan after an
    /// `APPEND`). Not counted as an eviction. Returns whether an entry
    /// was present.
    pub fn remove(&self, key: &str) -> bool {
        self.lock().map.remove(key).is_some()
    }

    /// Evict every entry whose plan references relation `name`. Returns
    /// how many entries were dropped. Not counted as evictions (those
    /// track capacity pressure only).
    pub fn invalidate_relation(&self, name: &str) -> usize {
        let mut inner = self.lock();
        let before = inner.map.len();
        inner.map.retain(|_, e| e.refs.iter().all(|r| r != name));
        before - inner.map.len()
    }

    /// Drop every entry (full invalidation).
    pub fn clear(&self) {
        self.lock().map.clear();
    }

    /// Entries currently cached.
    pub fn len(&self) -> usize {
        self.lock().map.len()
    }

    /// Is the cache empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The hit/miss/eviction counters.
    pub fn counters(&self) -> &CacheCounters {
        &self.counters
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn out(n: usize) -> Arc<KsjqOutput> {
        // Distinguishable dummy results: n pairs (i, i).
        Arc::new(KsjqOutput {
            pairs: (0..n as u32)
                .map(|i| (ksjq_relation::TupleId(i), ksjq_relation::TupleId(i)))
                .collect(),
            stats: Default::default(),
        })
    }

    fn refs(names: &[&str]) -> Vec<String> {
        names.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn hit_miss_counting() {
        let c = ResultCache::new(4);
        assert!(c.get("a").is_none());
        c.insert("a".into(), out(1), 2, refs(&["r"]), None);
        let hit = c.get("a").unwrap();
        assert_eq!(hit.output.len(), 1);
        assert_eq!(hit.k, 2);
        assert_eq!(c.counters().hits(), 1);
        assert_eq!(c.counters().misses(), 1);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn evicts_least_recently_used() {
        let c = ResultCache::new(2);
        c.insert("a".into(), out(1), 1, refs(&["r"]), None);
        c.insert("b".into(), out(2), 1, refs(&["r"]), None);
        // Touch "a" so "b" is the LRU.
        assert!(c.get("a").is_some());
        c.insert("c".into(), out(3), 1, refs(&["r"]), None);
        assert_eq!(c.counters().evictions(), 1);
        assert!(c.get("b").is_none(), "LRU entry evicted");
        assert!(c.get("a").is_some());
        assert!(c.get("c").is_some());
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn reinsert_same_key_does_not_evict() {
        let c = ResultCache::new(2);
        c.insert("a".into(), out(1), 1, refs(&["r"]), None);
        c.insert("b".into(), out(2), 1, refs(&["r"]), None);
        c.insert("a".into(), out(3), 1, refs(&["r"]), None); // overwrite, still 2 entries
        assert_eq!(c.counters().evictions(), 0);
        assert_eq!(c.get("a").unwrap().output.len(), 3);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn clear_is_not_an_eviction() {
        let c = ResultCache::new(2);
        c.insert("a".into(), out(1), 1, refs(&["r"]), None);
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.counters().evictions(), 0);
        assert!(c.get("a").is_none());
    }

    #[test]
    fn zero_capacity_disables() {
        let c = ResultCache::new(0);
        assert!(c
            .insert("a".into(), out(1), 1, refs(&["r"]), None)
            .is_none());
        assert!(c.get("a").is_none());
        assert!(c.is_empty());
    }

    #[test]
    fn invalidation_is_per_relation() {
        let c = ResultCache::new(8);
        c.insert("q1".into(), out(1), 1, refs(&["left", "right"]), None);
        c.insert("q2".into(), out(2), 1, refs(&["other", "another"]), None);
        c.insert("q3".into(), out(3), 1, refs(&["right", "third"]), None);
        assert_eq!(c.invalidate_relation("right"), 2);
        assert!(c.get("q1").is_none());
        assert!(c.get("q3").is_none());
        assert!(c.get("q2").is_some(), "unrelated entry survives");
        assert_eq!(c.invalidate_relation("right"), 0, "idempotent");
        assert_eq!(c.counters().evictions(), 0);
    }

    #[test]
    fn upgrade_keeps_the_entry_but_rotates_the_id() {
        let c = ResultCache::new(2);
        let plan = PlanSpec::new("left", "right");
        let id = c
            .insert(
                "q".into(),
                out(2),
                3,
                refs(&["left", "right"]),
                Some(plan.clone()),
            )
            .unwrap();
        let candidates = c.entries_for_relation("left");
        assert_eq!(candidates.len(), 1);
        let cand = &candidates[0];
        assert_eq!((cand.key.as_str(), cand.id, cand.k), ("q", id, 3));
        assert_eq!(
            cand.plan.as_ref().unwrap().fingerprint(),
            plan.fingerprint()
        );
        // Upgrade with the snapshotted id: same key, new id, old cursor dead.
        let new_id = c.upgrade("q", cand.id, out(5)).unwrap();
        assert_ne!(new_id, id);
        assert!(c.by_id(id).is_none(), "old result id expired");
        assert_eq!(c.by_id(new_id).unwrap().output.len(), 5);
        assert_eq!(
            c.get("q").unwrap().output.len(),
            5,
            "same key serves upgraded value"
        );
        assert_eq!(c.counters().evictions(), 0, "upgrade is not an eviction");
        // A stale snapshot id no longer applies.
        assert!(c.upgrade("q", id, out(9)).is_none());
        assert_eq!(c.get("q").unwrap().output.len(), 5);
    }

    #[test]
    fn remove_drops_without_counting_eviction() {
        let c = ResultCache::new(2);
        c.insert("a".into(), out(1), 1, refs(&["r"]), None);
        assert!(c.remove("a"));
        assert!(!c.remove("a"), "idempotent");
        assert!(c.get("a").is_none());
        assert_eq!(c.counters().evictions(), 0);
        assert!(c.entries_for_relation("r").is_empty());
    }

    #[test]
    fn results_are_addressable_by_id() {
        let c = ResultCache::new(2);
        let id_a = c.insert("a".into(), out(4), 3, refs(&["r"]), None).unwrap();
        let id_b = c.insert("b".into(), out(5), 2, refs(&["r"]), None).unwrap();
        assert_ne!(id_a, id_b);
        let got = c.by_id(id_a).unwrap();
        assert_eq!((got.id, got.k, got.output.len()), (id_a, 3, 4));
        // by_id refreshes recency: "a" must survive the next insert.
        c.insert("c".into(), out(6), 1, refs(&["r"]), None);
        assert!(c.by_id(id_a).is_some(), "recently paged entry kept");
        assert!(c.by_id(id_b).is_none(), "LRU entry gone, cursor dead");
        // A dead id is None, and hit/miss counters are untouched by by_id.
        assert_eq!(c.counters().hits() + c.counters().misses(), 0);
    }
}
