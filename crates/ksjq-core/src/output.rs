//! Query results.

use crate::stats::ExecStats;
use ksjq_relation::TupleId;

/// The result of one KSJQ execution: the k-dominant skyline of the joined
/// relation, as `(left, right)` base-tuple pairs, plus execution stats.
#[derive(Debug, Clone, PartialEq)]
pub struct KsjqOutput {
    /// Skyline joined tuples, sorted by `(left, right)` tuple id — every
    /// algorithm produces the identical, deterministic sequence.
    pub pairs: Vec<(TupleId, TupleId)>,
    /// Timing breakdown and cardinality counters.
    pub stats: ExecStats,
}

impl KsjqOutput {
    /// Number of skyline tuples.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Is the skyline empty? (Legitimately possible: k-dominance admits
    /// mutual elimination.)
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Does the skyline contain the joined tuple `(left, right)`?
    pub fn contains(&self, left: u32, right: u32) -> bool {
        self.pairs
            .binary_search(&(TupleId(left), TupleId(right)))
            .is_ok()
    }

    /// How many chunks of at most `rows_per_chunk` pairs this result
    /// splits into. Always ≥ 1: an empty skyline is one empty chunk, so
    /// a streaming consumer still receives a (final, empty) frame.
    pub fn chunk_count(&self, rows_per_chunk: usize) -> usize {
        let per = rows_per_chunk.max(1);
        self.pairs.len().div_ceil(per).max(1)
    }

    /// Chunk `index` (0-based) of the result split every `rows_per_chunk`
    /// pairs — a borrowed slice, so streaming a result never copies it.
    /// Out-of-range indices return `None`; index 0 of an empty result is
    /// the empty slice (matching [`chunk_count`](Self::chunk_count)).
    pub fn chunk(&self, index: usize, rows_per_chunk: usize) -> Option<&[(TupleId, TupleId)]> {
        let per = rows_per_chunk.max(1);
        if index >= self.chunk_count(rows_per_chunk) {
            return None;
        }
        let start = index * per;
        let end = (start + per).min(self.pairs.len());
        Some(&self.pairs[start..end])
    }

    /// Iterate the result as chunks of at most `rows_per_chunk` pairs
    /// (an empty result yields one empty chunk).
    pub fn chunks(
        &self,
        rows_per_chunk: usize,
    ) -> impl Iterator<Item = &[(TupleId, TupleId)]> + '_ {
        (0..self.chunk_count(rows_per_chunk)).map(move |i| {
            self.chunk(i, rows_per_chunk)
                .expect("index below chunk_count")
        })
    }
}

/// Sort-and-wrap helper used by the algorithm implementations.
pub(crate) fn finish(mut pairs: Vec<(u32, u32)>, mut stats: ExecStats) -> KsjqOutput {
    pairs.sort_unstable();
    stats.counts.output = pairs.len();
    KsjqOutput {
        pairs: pairs
            .into_iter()
            .map(|(u, v)| (TupleId(u), TupleId(v)))
            .collect(),
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finish_sorts_and_counts() {
        let out = finish(vec![(2, 1), (0, 3), (2, 0)], ExecStats::default());
        assert_eq!(
            out.pairs,
            vec![
                (TupleId(0), TupleId(3)),
                (TupleId(2), TupleId(0)),
                (TupleId(2), TupleId(1))
            ]
        );
        assert_eq!(out.stats.counts.output, 3);
        assert_eq!(out.len(), 3);
        assert!(!out.is_empty());
        assert!(out.contains(2, 0));
        assert!(!out.contains(1, 1));
    }

    #[test]
    fn empty_output() {
        let out = finish(vec![], ExecStats::default());
        assert!(out.is_empty());
        assert_eq!(out.len(), 0);
    }

    #[test]
    fn chunking_covers_every_pair_exactly_once() {
        let out = finish((0..10u32).map(|i| (i, i)).collect(), ExecStats::default());
        for per in [1, 3, 4, 10, 11, 1000] {
            assert_eq!(out.chunk_count(per), 10usize.div_ceil(per).max(1));
            let rejoined: Vec<_> = out.chunks(per).flatten().copied().collect();
            assert_eq!(rejoined, out.pairs, "rows_per_chunk={per}");
            let sizes: Vec<_> = out.chunks(per).map(<[_]>::len).collect();
            assert!(sizes.iter().all(|&s| s <= per), "rows_per_chunk={per}");
            // Every chunk but the last is full.
            assert!(sizes[..sizes.len() - 1].iter().all(|&s| s == per));
        }
        assert!(out.chunk(out.chunk_count(3), 3).is_none(), "past the end");
    }

    #[test]
    fn empty_result_is_one_empty_chunk() {
        let out = finish(vec![], ExecStats::default());
        assert_eq!(out.chunk_count(100), 1);
        assert_eq!(out.chunk(0, 100), Some(&[][..]));
        assert!(out.chunk(1, 100).is_none());
        assert_eq!(out.chunks(100).count(), 1);
        // rows_per_chunk = 0 is clamped to 1 rather than dividing by zero.
        assert_eq!(out.chunk_count(0), 1);
    }
}
