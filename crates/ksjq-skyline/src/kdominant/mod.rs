//! *k*-dominant skyline algorithms (Chan et al., SIGMOD 2006).
//!
//! A tuple is in the k-dominant skyline iff **no** other tuple k-dominates
//! it. Unlike full dominance, k-dominance is not transitive and can even be
//! cyclic (`u ≻ₖ v ≻ₖ w ≻ₖ u`, paper Sec. 2.2), which has two structural
//! consequences every algorithm here must respect:
//!
//! 1. Two tuples can k-dominate *each other* — then **both** are excluded,
//!    and the k-dominant skyline can legitimately be empty.
//! 2. Window algorithms cannot rely on the window to be a sound summary of
//!    eliminated tuples, because an eliminated tuple may dominate a window
//!    member. [`tsa`] therefore verifies with a second scan, and [`osa`]
//!    keeps eliminated-but-undominated tuples around as potential
//!    dominators.

pub mod naive;
pub mod osa;
pub mod presort;
pub mod tsa;

pub use naive::kdom_naive;
pub use osa::kdom_osa;
pub use presort::kdom_tsa_presorted;
pub use tsa::{kdom_tsa, StreamingTsa};
