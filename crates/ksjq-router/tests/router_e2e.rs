//! Cluster end-to-end tests: a router in front of live `ksjq-serverd`
//! backends must return byte-identical answers to one single-node server
//! for every shard count, survive a replica being killed mid-session,
//! and never drop a live binding when a distributed `LOAD` fails.

use ksjq_datagen::{
    paper_flights, relation_to_annotated_csv, relation_to_csv, DataType, FlightNetworkSpec,
};
use ksjq_join::AggFunc;
use ksjq_router::{DialPolicy, Router, RouterConfig, RunningRouter, Topology};
use ksjq_server::{
    ClientError, ConnectOptions, ErrorCode, FaultPlan, KsjqClient, PlanSpec, RunningServer, Server,
    ServerConfig, SyntheticSpec,
};
use std::time::Duration;

fn backend() -> RunningServer {
    let config = ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        cache_entries: 16,
        ..ServerConfig::default()
    };
    Server::start(ksjq_core::Engine::new(), &config).unwrap()
}

/// Tight timeouts and backoff so failover tests finish quickly; the
/// fixed seed keeps retry jitter deterministic.
fn fast_policy() -> DialPolicy {
    DialPolicy {
        options: ConnectOptions::all(Duration::from_secs(10)),
        attempts: 2,
        backoff: Duration::from_millis(5),
        seed: 42,
    }
}

struct Cluster {
    shards: Vec<Vec<RunningServer>>,
    router: RunningRouter,
}

fn cluster_config(n_shards: usize, n_replicas: usize, config: RouterConfig) -> Cluster {
    let shards: Vec<Vec<RunningServer>> = (0..n_shards)
        .map(|_| (0..n_replicas).map(|_| backend()).collect())
        .collect();
    let topology = Topology::new(
        shards
            .iter()
            .map(|rs| rs.iter().map(|b| b.addr().to_string()).collect())
            .collect(),
    )
    .unwrap();
    let router = Router::start(topology, &config).unwrap();
    Cluster { shards, router }
}

fn cluster_with(n_shards: usize, n_replicas: usize, cache_entries: usize) -> Cluster {
    cluster_config(
        n_shards,
        n_replicas,
        RouterConfig {
            addr: "127.0.0.1:0".into(),
            cache_entries,
            policy: fast_policy(),
            ..RouterConfig::default()
        },
    )
}

fn cluster(n_shards: usize, n_replicas: usize) -> Cluster {
    cluster_with(n_shards, n_replicas, 64)
}

/// The paper's Tables 1–2 as CSV (city key + four Min attributes).
fn paper_csvs() -> (String, String) {
    let pf = paper_flights(false);
    (
        relation_to_csv(&pf.outbound, "city", Some(&pf.cities)).unwrap(),
        relation_to_csv(&pf.inbound, "city", Some(&pf.cities)).unwrap(),
    )
}

/// A query's observable outcome: `Ok((k, pairs))` or a rejected plan.
type Answer = Result<(usize, Vec<(u32, u32)>), ()>;

/// Run a query, collapsing a server-side `ERR` to `Err(())` so oracle
/// and router can be compared even on plans that are invalid (both
/// sides must reject them). Transport errors still panic.
fn run(client: &mut KsjqClient, plan: &PlanSpec) -> Answer {
    match client.query(plan) {
        Ok(rows) => Ok((rows.k, rows.pairs)),
        Err(ClientError::Server { .. }) => Err(()),
        Err(e) => panic!("transport failure: {e}"),
    }
}

/// Single-node oracle: one plain server loaded with the same CSVs.
fn oracle(csvs: &[(&str, &str)], plans: &[PlanSpec]) -> Vec<Answer> {
    let server = backend();
    let mut client = KsjqClient::connect(server.addr()).unwrap();
    for (name, csv) in csvs {
        client.load_csv(name, csv).unwrap();
    }
    let answers = plans.iter().map(|p| run(&mut client, p)).collect();
    client.close().unwrap();
    server.stop().unwrap();
    answers
}

#[test]
fn paper_tables_identical_across_shard_counts() {
    let (out_csv, in_csv) = paper_csvs();
    let plans: Vec<PlanSpec> = (5..=8)
        .map(|k| PlanSpec::new("outbound", "inbound").k(k))
        .chain([PlanSpec::new("outbound", "inbound")])
        .collect();
    let expected = oracle(&[("outbound", &out_csv), ("inbound", &in_csv)], &plans);

    for n_shards in [1, 2, 4] {
        let cl = cluster(n_shards, 1);
        let mut client = KsjqClient::connect(cl.router.addr()).unwrap();
        let loaded = client.load_csv("outbound", &out_csv).unwrap();
        assert!(loaded.contains(&format!("shards={n_shards}")), "{loaded}");
        client.load_csv("inbound", &in_csv).unwrap();
        for (plan, want) in plans.iter().zip(&expected) {
            let got = run(&mut client, plan);
            assert_eq!(&got, want, "shards={n_shards} plan={plan:?}");
        }
        // Table 3 (k = 7), now served from the router's result cache.
        let again = client
            .query(&PlanSpec::new("outbound", "inbound").k(7))
            .unwrap();
        assert_eq!(again.pairs, vec![(0, 2), (2, 0), (4, 4), (5, 5)]);
        assert!(again.cached, "second identical query must hit the cache");
        client.close().unwrap();
    }
}

#[test]
fn prepared_sessions_match_single_node() {
    let (out_csv, in_csv) = paper_csvs();
    let cl = cluster(2, 1);
    let mut client = KsjqClient::connect(cl.router.addr()).unwrap();
    client.load_csv("outbound", &out_csv).unwrap();
    client.load_csv("inbound", &in_csv).unwrap();

    let plan = PlanSpec::new("outbound", "inbound").k(7);
    client.prepare("q1", &plan).unwrap();
    let explain = client.explain("q1").unwrap();
    assert!(explain.starts_with("distributed shards=2 "), "{explain}");
    assert!(explain.contains("k=7"), "{explain}");

    let rows = client.execute("q1").unwrap();
    assert_eq!(rows.pairs, vec![(0, 2), (2, 0), (4, 4), (5, 5)]);
    client.close().unwrap();
}

#[test]
fn aggregate_network_identical_across_shard_counts() {
    let net = FlightNetworkSpec {
        outbound: 48,
        inbound: 40,
        hubs: 13,
        seed: 0x5EED,
    }
    .generate();
    let out_csv = relation_to_annotated_csv(&net.outbound, "hub", Some(&net.hubs)).unwrap();
    let in_csv = relation_to_annotated_csv(&net.inbound, "hub", Some(&net.hubs)).unwrap();
    let aggs = [AggFunc::Sum, AggFunc::Sum];
    let plans: Vec<PlanSpec> = vec![
        PlanSpec::new("net_out", "net_in").aggs(&aggs),
        PlanSpec::new("net_out", "net_in").aggs(&aggs).k(7),
        PlanSpec::new("net_out", "net_in").aggs(&aggs).k(6),
    ];
    let expected = oracle(&[("net_out", &out_csv), ("net_in", &in_csv)], &plans);
    assert!(expected[0].is_ok(), "oracle rejected the skyline plan");

    for n_shards in [2, 4] {
        let cl = cluster(n_shards, 1);
        let mut client = KsjqClient::connect(cl.router.addr()).unwrap();
        client.load_csv("net_out", &out_csv).unwrap();
        client.load_csv("net_in", &in_csv).unwrap();
        for (plan, want) in plans.iter().zip(&expected) {
            let got = run(&mut client, plan);
            assert_eq!(&got, want, "shards={n_shards} plan={plan:?}");
        }
        client.close().unwrap();
    }
}

/// Live catalogs through the router: an `APPEND` partitions the delta
/// to the shards that own each join group (two-phase STAGE/COMMIT on
/// every replica), a `DELETE` removes keys everywhere, and after both
/// the cluster answer stays byte-identical to a single node that took
/// the same mutations.
#[test]
fn append_and_delete_identical_across_shard_counts() {
    let (out_csv, in_csv) = paper_csvs();
    let plan = PlanSpec::new("outbound", "inbound").k(7);
    let city = out_csv
        .lines()
        .nth(1)
        .unwrap()
        .split(',')
        .next()
        .unwrap()
        .to_string();
    // A dominant row on a joining city plus a row opening a fresh group.
    let delta = format!("{city},1,1,1,1\nZZZ,9,9,9,9");

    // Single-node oracle taking the identical mutation sequence.
    let server = backend();
    let mut oc = KsjqClient::connect(server.addr()).unwrap();
    oc.load_csv("outbound", &out_csv).unwrap();
    oc.load_csv("inbound", &in_csv).unwrap();
    let baseline = run(&mut oc, &plan);
    oc.append_rows("outbound", &delta).unwrap();
    let after_append = run(&mut oc, &plan);
    assert_ne!(after_append, baseline, "the delta must change this answer");
    oc.delete_keys("outbound", std::slice::from_ref(&city))
        .unwrap();
    let after_delete = run(&mut oc, &plan);
    oc.close().unwrap();
    server.stop().unwrap();

    for n_shards in [1, 2, 3] {
        let cl = cluster(n_shards, 2); // 2 replicas: deltas must reach both
        let mut client = KsjqClient::connect(cl.router.addr()).unwrap();
        client.load_csv("outbound", &out_csv).unwrap();
        client.load_csv("inbound", &in_csv).unwrap();
        // Warm the router's merged-result cache so a stale entry would
        // be caught below.
        assert_eq!(run(&mut client, &plan), baseline, "shards={n_shards}");

        let msg = client.append_rows("outbound", &delta).unwrap();
        assert!(msg.contains("+2 rows"), "{msg}");
        assert_eq!(
            run(&mut client, &plan),
            after_append,
            "shards={n_shards} post-append"
        );

        let msg = client
            .delete_keys("outbound", std::slice::from_ref(&city))
            .unwrap();
        assert!(msg.contains("deleted"), "{msg}");
        assert_eq!(
            run(&mut client, &plan),
            after_delete,
            "shards={n_shards} post-delete"
        );

        // Staged spelling stays backend-only at the router.
        match client.append_stage("outbound", &delta) {
            Err(ClientError::Server { code, message }) => {
                assert_eq!(code, ErrorCode::Invalid);
                assert!(message.contains("backend-only"), "{message}");
            }
            other => panic!("router must reject APPEND … STAGE, got {other:?}"),
        }
        client.close().unwrap();
    }
}

/// Shrunken round-2 batch sizes force multiple FETCH/CHECK round trips
/// per shard — the answer must not change, and the knobs are visible as
/// STATS extension tokens.
#[test]
fn tiny_round2_batches_answer_identically() {
    let (out_csv, in_csv) = paper_csvs();
    let plans = vec![
        PlanSpec::new("outbound", "inbound").k(7),
        PlanSpec::new("outbound", "inbound").k(5),
    ];
    let expected = oracle(&[("outbound", &out_csv), ("inbound", &in_csv)], &plans);

    let cl = cluster_config(
        3,
        1,
        RouterConfig {
            addr: "127.0.0.1:0".into(),
            cache_entries: 0, // every query exercises the two-round path
            policy: fast_policy(),
            fetch_batch: 2,
            check_batch: 1,
            ..RouterConfig::default()
        },
    );
    let mut client = KsjqClient::connect(cl.router.addr()).unwrap();
    client.load_csv("outbound", &out_csv).unwrap();
    client.load_csv("inbound", &in_csv).unwrap();
    for (plan, want) in plans.iter().zip(&expected) {
        assert_eq!(&run(&mut client, plan), want, "plan={plan:?}");
    }
    let raw = client.raw("STATS").unwrap();
    assert!(raw.contains(" fetch_batch=2"), "{raw}");
    assert!(raw.contains(" check_batch=1"), "{raw}");
    client.close().unwrap();
}

#[test]
fn find_k_goals_match_single_node() {
    use ksjq_core::{FindKStrategy, Goal};
    let (out_csv, in_csv) = paper_csvs();
    let plans: Vec<PlanSpec> = vec![
        PlanSpec::new("outbound", "inbound").goal(Goal::AtLeast(4, FindKStrategy::Binary)),
        PlanSpec::new("outbound", "inbound").goal(Goal::AtMost(3, FindKStrategy::Range)),
        PlanSpec::new("outbound", "inbound").goal(Goal::AtLeast(2, FindKStrategy::Naive)),
    ];
    let expected = oracle(&[("outbound", &out_csv), ("inbound", &in_csv)], &plans);

    let cl = cluster(3, 1);
    let mut client = KsjqClient::connect(cl.router.addr()).unwrap();
    client.load_csv("outbound", &out_csv).unwrap();
    client.load_csv("inbound", &in_csv).unwrap();
    for (plan, want) in plans.iter().zip(&expected) {
        let got = run(&mut client, plan);
        assert_eq!(&got, want, "find-k plan={plan:?}");
    }
    client.close().unwrap();
}

#[test]
fn disjoint_join_keys_yield_the_same_empty_result() {
    let left = "city,cost,rating:max\nAAA,1,2\nBBB,2,3\nCCC,3,4\n";
    let right = "city,cost,rating:max\nDDD,1,2\nEEE,2,3\n";
    let plans = [PlanSpec::new("l", "r")];
    let expected = oracle(&[("l", left), ("r", right)], &plans);

    for n_shards in [1, 2, 4] {
        let cl = cluster(n_shards, 1);
        let mut client = KsjqClient::connect(cl.router.addr()).unwrap();
        client.load_csv("l", left).unwrap();
        client.load_csv("r", right).unwrap();
        let got = run(&mut client, &plans[0]);
        assert_eq!(&got, &expected[0], "shards={n_shards}");
        assert_eq!(got.unwrap().1, Vec::<(u32, u32)>::new());
        client.close().unwrap();
    }
}

#[test]
fn replica_failover_mid_session() {
    let mut cl = cluster_with(2, 2, 0); // cache off: re-query must re-fan-out
    let (out_csv, in_csv) = paper_csvs();
    let mut client = KsjqClient::connect(cl.router.addr()).unwrap();
    client.load_csv("outbound", &out_csv).unwrap();
    client.load_csv("inbound", &in_csv).unwrap();

    let plan = PlanSpec::new("outbound", "inbound").k(7);
    let before = client.query(&plan).unwrap();
    assert_eq!(before.pairs, vec![(0, 2), (2, 0), (4, 4), (5, 5)]);

    // Kill one replica of each shard — including whichever one this
    // session's dialers were just talking to.
    cl.shards[0].remove(0).stop().unwrap();
    cl.shards[1].remove(0).stop().unwrap();

    let after = client.query(&plan).unwrap();
    assert_eq!(after.pairs, before.pairs, "failover changed the answer");
    assert!(!after.cached);

    let stats = client.stats().unwrap();
    assert!(
        stats.shard_retries >= 1,
        "failover must be counted: {stats:?}"
    );
    assert_eq!(stats.shard_errors, 0, "no shard was fully down: {stats:?}");
    client.close().unwrap();
}

#[test]
fn whole_shard_down_is_reported_not_hung() {
    let mut cl = cluster_with(2, 1, 0);
    let (out_csv, in_csv) = paper_csvs();
    let mut client = KsjqClient::connect(cl.router.addr()).unwrap();
    client.load_csv("outbound", &out_csv).unwrap();
    client.load_csv("inbound", &in_csv).unwrap();

    for replicas in &mut cl.shards {
        for server in replicas.drain(..) {
            server.stop().unwrap();
        }
    }

    let err = client
        .query(&PlanSpec::new("outbound", "inbound").k(7))
        .unwrap_err();
    match err {
        ClientError::Server { code, message } => {
            assert_eq!(code, ErrorCode::Unavailable, "{message}");
            assert!(code.is_transient(), "unavailable must invite a retry");
        }
        other => panic!("expected a server-side error, got {other}"),
    }
    let stats = client.stats().unwrap();
    assert!(stats.shard_errors >= 1, "{stats:?}");
    client.close().unwrap();
}

#[test]
fn failed_load_keeps_the_old_binding_on_every_shard() {
    let cl = cluster_with(2, 2, 0);
    let (out_csv, in_csv) = paper_csvs();
    let mut client = KsjqClient::connect(cl.router.addr()).unwrap();
    client.load_csv("outbound", &out_csv).unwrap();
    client.load_csv("inbound", &in_csv).unwrap();
    let plan = PlanSpec::new("outbound", "inbound").k(7);
    let before = client.query(&plan).unwrap();

    // A replacement that partitions fine at the router (cells are just
    // strings there) but fails schema validation when a shard stages it
    // mid-two-phase-load. The old binding must survive everywhere.
    let bad = "city,cost,flying_time,fee,popularity\nJAI,cheap,1,1,1\nBOM,2,2,2,2\n";
    let err = client.load_csv("outbound", bad).unwrap_err();
    assert_eq!(err.code(), Some(ErrorCode::Parse), "{err}");

    let after = client.query(&plan).unwrap();
    assert_eq!(after.pairs, before.pairs, "failed LOAD corrupted a shard");

    // Directly on each backend: the original slice still answers, and
    // nothing is left staged (ABORT ran everywhere).
    for replicas in &cl.shards {
        for server in replicas {
            let mut direct = KsjqClient::connect(server.addr()).unwrap();
            let err = direct.commit("outbound").unwrap_err();
            match err {
                ClientError::Server { code, message } => {
                    assert_eq!(code, ErrorCode::Invalid, "{message}");
                    assert!(message.contains("nothing staged"), "{message}")
                }
                other => panic!("unexpected: {other}"),
            }
            direct.close().unwrap();
        }
    }
}

#[test]
fn stats_report_fanout_counters_and_shard_rows() {
    let cl = cluster(2, 1);
    let (out_csv, in_csv) = paper_csvs();
    let mut client = KsjqClient::connect(cl.router.addr()).unwrap();
    client.load_csv("outbound", &out_csv).unwrap();
    client.load_csv("inbound", &in_csv).unwrap();
    client
        .query(&PlanSpec::new("outbound", "inbound").k(7))
        .unwrap();

    let stats = client.stats().unwrap();
    assert!(stats.fanout_queries >= 1, "{stats:?}");
    assert_eq!(stats.shard_errors, 0, "{stats:?}");

    // The raw line carries per-shard row counts after the standard
    // fields; ServerStats::parse must tolerate (and a fresh client
    // ignore) the extension tokens.
    let raw = client.raw("STATS").unwrap();
    assert!(raw.contains("fanout_queries="), "{raw}");
    assert!(raw.contains("shard0_rows="), "{raw}");
    assert!(raw.contains("shard1_rows="), "{raw}");
    let per_shard: u64 = raw
        .split_whitespace()
        .filter_map(|tok| tok.strip_prefix("shard"))
        .filter_map(|tok| {
            tok.split_once("_rows=")
                .and_then(|(_, v)| v.parse::<u64>().ok())
        })
        .sum();
    let total_rows = (out_csv.lines().count() - 1 + in_csv.lines().count() - 1) as u64;
    assert_eq!(
        per_shard, total_rows,
        "shard rows must sum to the loaded rows: {raw}"
    );
    client.close().unwrap();
}

#[test]
fn router_rejects_backend_only_and_reserved_input() {
    let cl = cluster(1, 1);
    let mut client = KsjqClient::connect(cl.router.addr()).unwrap();
    for backend_only in ["SYNC", "STAGE x INLINE a,b;1,2", "COMMIT x", "ABORT x"] {
        let reply = client.raw(backend_only).unwrap();
        assert!(reply.starts_with("ERR "), "{backend_only} -> {reply}");
    }
    // Reserved broadcast namespace.
    let err = client.load_csv(".all.x", "a,b\n1,2\n").unwrap_err();
    assert_eq!(err.code(), Some(ErrorCode::Invalid), "{err}");
    // Unknown relations.
    let err = client.query(&PlanSpec::new("no", "pe")).unwrap_err();
    assert_eq!(err.code(), Some(ErrorCode::Invalid), "{err}");
    // The session survives all of the above.
    client.load_csv("ok", "city,cost\nJAI,1\n").unwrap();
    client.load_csv("ok2", "city,cost\nJAI,2\n").unwrap();
    let rows = client.query(&PlanSpec::new("ok", "ok2")).unwrap();
    assert_eq!(rows.pairs, vec![(0, 0)]);
    client.close().unwrap();
}

/// A session `DEADLINE` bounds the whole scatter-gather: the budget is
/// split across the router's rounds and the shards' kernels cancel
/// cooperatively, so an over-tight deadline yields `ERR timeout` — and
/// clearing it lets the very same session run the query to completion.
#[test]
fn deadline_bounds_the_scatter_gather() {
    let cl = cluster_with(2, 1, 0);
    let mut client = KsjqClient::connect(cl.router.addr()).unwrap();
    let spec = |seed| SyntheticSpec {
        data_type: DataType::AntiCorrelated,
        n: 1500,
        d: 7,
        a: 0,
        g: 5,
        seed,
    };
    client.load_synthetic("dl1", spec(7)).unwrap();
    client.load_synthetic("dl2", spec(1007)).unwrap();
    let heavy = PlanSpec::new("dl1", "dl2")
        .k(11)
        .algorithm(ksjq_core::Algorithm::DominatorBased);
    client.set_deadline(1).unwrap();
    let err = client.query(&heavy).unwrap_err();
    assert_eq!(err.code(), Some(ErrorCode::Timeout), "{err}");
    assert!(err.is_transient(), "a timeout is worth retrying");
    client.set_deadline(0).unwrap();
    assert!(!client.query(&heavy).unwrap().cached);
    client.close().unwrap();
}

/// Seeded faults on every router→backend connection (drops and partial
/// writes; no bit flips — those are a payload-corruption drill, not an
/// availability one): the dialer's failover and retries absorb what they
/// can, and every `ROWS` that reaches the client is byte-identical to
/// the single-node oracle. Flaky backends degrade availability, never
/// correctness.
#[test]
fn seeded_backend_faults_never_change_an_answer() {
    let (out_csv, in_csv) = paper_csvs();
    let plan = PlanSpec::new("outbound", "inbound").k(7);
    let expected = oracle(
        &[("outbound", &out_csv), ("inbound", &in_csv)],
        std::slice::from_ref(&plan),
    );

    let faults: FaultPlan = "seed=99,drop=25,partial=25".parse().unwrap();
    eprintln!("chaos plan={faults}");
    let mut policy = fast_policy();
    policy.options.faults = Some(faults);
    policy.attempts = 4;
    // cache_entries = 0: every query must cross the faulty wires.
    let cl = cluster_config(
        2,
        2,
        RouterConfig {
            addr: "127.0.0.1:0".into(),
            cache_entries: 0,
            policy,
            ..RouterConfig::default()
        },
    );
    let mut client = KsjqClient::connect(cl.router.addr()).unwrap();
    // Loads fan out to every replica; under injected faults a LOAD may
    // fail partially (reported `unavailable`) — rebinding is idempotent,
    // so retry until both names are live.
    for (name, csv) in [("outbound", &out_csv), ("inbound", &in_csv)] {
        let mut done = false;
        for _ in 0..20 {
            match client.load_csv(name, csv) {
                Ok(_) => {
                    done = true;
                    break;
                }
                Err(e) => assert!(e.code().is_some() || e.is_transient(), "{e}"),
            }
        }
        assert!(done, "LOAD {name} never survived the fault plan");
    }
    let (mut completed, mut severed) = (0u32, 0u32);
    for _ in 0..40 {
        match run(&mut client, &plan) {
            Ok(answer) => {
                completed += 1;
                assert_eq!(Ok(answer), expected[0], "faults corrupted a routed answer");
            }
            Err(()) => severed += 1,
        }
    }
    eprintln!("chaos: {completed} completed, {severed} degraded");
    assert!(
        completed > 0,
        "nothing got through — weaken the fault rates"
    );
    client.close().unwrap();
}

/// Satellite: shard-count invariance on random synthetic specs — the
/// sharded cluster is a metamorphic twin of a single node.
mod invariance {
    use super::*;
    use ksjq_datagen::DataType;
    use proptest::prelude::*;
    use std::net::SocketAddr;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::OnceLock;

    static CASE: AtomicU64 = AtomicU64::new(0);

    /// One oracle backend plus 2- and 3-shard clusters, shared by every
    /// proptest case (relation names are unique per case). Leaked on
    /// purpose: they serve until the test process exits.
    fn fixtures() -> (SocketAddr, SocketAddr, SocketAddr) {
        static FIX: OnceLock<(SocketAddr, SocketAddr, SocketAddr)> = OnceLock::new();
        *FIX.get_or_init(|| {
            let single = backend();
            let addr1 = single.addr();
            std::mem::forget(single);
            let c2 = cluster(2, 1);
            let addr2 = c2.router.addr();
            std::mem::forget(c2);
            let c3 = cluster(3, 1);
            let addr3 = c3.router.addr();
            std::mem::forget(c3);
            (addr1, addr2, addr3)
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]
        #[test]
        fn sharded_equals_single_node(
            dt in 0usize..3,
            n in 8usize..40,
            d in 2usize..5,
            a in 0usize..3,
            g in 1usize..7,
            seed in 0u64..1 << 32,
        ) {
            let data_type = [DataType::Independent, DataType::Correlated, DataType::AntiCorrelated][dt];
            let a = a.min(d - 1);
            let aggs = vec![AggFunc::Sum; a];
            let case = CASE.fetch_add(1, Ordering::Relaxed);
            let (lname, rname) = (format!("pl_{case}"), format!("pr_{case}"));
            let spec = |seed: u64| SyntheticSpec { data_type, n, d, a, g, seed };

            let (single, two, three) = fixtures();
            let mut answers = Vec::new();
            for addr in [single, two, three] {
                let mut client = KsjqClient::connect(addr).unwrap();
                client.load_synthetic(&lname, spec(seed)).unwrap();
                client.load_synthetic(&rname, spec(seed ^ 0x9E37_79B9)).unwrap();
                let plan = PlanSpec::new(&lname, &rname).aggs(&aggs);
                let skyline = run(&mut client, &plan);
                // Also probe one tighter k below the maximum; both sides
                // must agree even when that k is invalid.
                let tight = run(&mut client, &plan.clone().k(2 * d - a - 1));
                client.close().unwrap();
                answers.push((skyline, tight));
            }
            prop_assert_eq!(
                &answers[1], &answers[0],
                "2 shards vs single node: dt={:?} n={} d={} a={} g={} seed={}",
                data_type, n, d, a, g, seed
            );
            prop_assert_eq!(
                &answers[2], &answers[0],
                "3 shards vs single node: dt={:?} n={} d={} a={} g={} seed={}",
                data_type, n, d, a, g, seed
            );
        }
    }
}
