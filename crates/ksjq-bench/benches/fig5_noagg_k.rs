//! Figs. 5a/5b: effect of k and d without aggregation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ksjq_bench::PaperParams;
use ksjq_core::{ksjq_dominator_based, ksjq_grouping, ksjq_naive, Config};

fn bench_noagg_k(c: &mut Criterion) {
    let cfg = Config::default();
    let params = PaperParams {
        n: 400,
        d: 5,
        a: 0,
        ..Default::default()
    };
    let (r1, r2) = params.relations();
    let cx = params.context(&r1, &r2);
    let mut group = c.benchmark_group("fig5a_noagg_effect_of_k");
    group.sample_size(10);
    for k in 6..=9usize {
        group.bench_with_input(BenchmarkId::new("G", k), &k, |b, &k| {
            b.iter(|| ksjq_grouping(&cx, k, &cfg).unwrap().len())
        });
        group.bench_with_input(BenchmarkId::new("D", k), &k, |b, &k| {
            b.iter(|| ksjq_dominator_based(&cx, k, &cfg).unwrap().len())
        });
        group.bench_with_input(BenchmarkId::new("N", k), &k, |b, &k| {
            b.iter(|| ksjq_naive(&cx, k, &cfg).unwrap().len())
        });
    }
    group.finish();
}

fn bench_noagg_d(c: &mut Criterion) {
    let cfg = Config::default();
    let mut group = c.benchmark_group("fig5b_noagg_effect_of_d");
    group.sample_size(10);
    for (d, k) in [(4usize, 7usize), (5, 7), (6, 7), (6, 11), (7, 11), (10, 11)] {
        let params = PaperParams {
            n: 400,
            d,
            a: 0,
            k,
            ..Default::default()
        };
        let (r1, r2) = params.relations();
        let cx = params.context(&r1, &r2);
        let id = format!("d{d}k{k}");
        group.bench_function(BenchmarkId::new("G", &id), |b| {
            b.iter(|| ksjq_grouping(&cx, k, &cfg).unwrap().len())
        });
        group.bench_function(BenchmarkId::new("N", &id), |b| {
            b.iter(|| ksjq_naive(&cx, k, &cfg).unwrap().len())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_noagg_k, bench_noagg_d);
criterion_main!(benches);
