//! Candidate verification against target-set joins.
//!
//! A candidate joined tuple survives iff no join of target-set members
//! k-dominates it. The three entry points mirror the check sets of the
//! paper's algorithms:
//!
//! * [`JoinedCheck::dominated_via_left`] — `τ(u′) ⋈ R2` (Algorithm 2's
//!   `CheckTarget` for `SS1 ⋈ SN2`, and — with the sound one-sided filter —
//!   for `SN1 ⋈ SN2`);
//! * [`JoinedCheck::dominated_via_right`] — `R1 ⋈ τ(v′)` (the symmetric
//!   case `SN1 ⋈ SS2`);
//! * [`JoinedCheck::dominated_via_both`] — `dom(u′) ⋈ dom(v′)`
//!   (Algorithm 3's `CheckDominators`).

use ksjq_join::JoinContext;
use ksjq_relation::k_dominates;

/// Scratch-carrying verifier for one `(cx, k)` pair.
pub(crate) struct JoinedCheck<'b, 'a> {
    cx: &'b JoinContext<'a>,
    k: usize,
    scratch: Vec<f64>,
    /// Reusable membership mask over right tuple ids (two-sided checks).
    rmask: Vec<bool>,
}

impl<'b, 'a> JoinedCheck<'b, 'a> {
    pub fn new(cx: &'b JoinContext<'a>, k: usize) -> Self {
        JoinedCheck {
            cx,
            k,
            scratch: vec![0.0; cx.d_joined()],
            rmask: vec![false; cx.right().n()],
        }
    }

    /// Is `cand` k-dominated by some `u ⋈ v` with `u ∈ targets`,
    /// `v` join-compatible with `u`?
    pub fn dominated_via_left(&mut self, targets: &[u32], cand: &[f64]) -> bool {
        for &u in targets {
            for &v in self.cx.right_partners(u) {
                self.cx.fill(u, v, &mut self.scratch);
                if k_dominates(&self.scratch, cand, self.k) {
                    return true;
                }
            }
        }
        false
    }

    /// Is `cand` k-dominated by some `u ⋈ v` with `v ∈ targets`,
    /// `u` join-compatible with `v`?
    pub fn dominated_via_right(&mut self, targets: &[u32], cand: &[f64]) -> bool {
        for &v in targets {
            for &u in self.cx.left_partners(v) {
                self.cx.fill(u, v, &mut self.scratch);
                if k_dominates(&self.scratch, cand, self.k) {
                    return true;
                }
            }
        }
        false
    }

    /// Is `cand` k-dominated by some `u ⋈ v` with `u ∈ left_targets` *and*
    /// `v ∈ right_targets` (the dominator-based algorithm's
    /// `dom(u) ⋈ dom(v)`)?
    pub fn dominated_via_both(
        &mut self,
        left_targets: &[u32],
        right_targets: &[u32],
        cand: &[f64],
    ) -> bool {
        for &v in right_targets {
            self.rmask[v as usize] = true;
        }
        let mut found = false;
        'outer: for &u in left_targets {
            for &v in self.cx.right_partners(u) {
                if self.rmask[v as usize] {
                    self.cx.fill(u, v, &mut self.scratch);
                    if k_dominates(&self.scratch, cand, self.k) {
                        found = true;
                        break 'outer;
                    }
                }
            }
        }
        for &v in right_targets {
            self.rmask[v as usize] = false;
        }
        found
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ksjq_join::JoinSpec;
    use ksjq_relation::{Relation, Schema};

    fn rel(groups: &[u64], rows: &[Vec<f64>]) -> Relation {
        Relation::from_grouped_rows(Schema::uniform(rows[0].len()).unwrap(), groups, rows).unwrap()
    }

    #[test]
    fn left_and_right_checks_agree_with_exhaustive() {
        let r1 = rel(
            &[0, 0, 1],
            &[vec![1.0, 5.0], vec![2.0, 2.0], vec![0.0, 0.0]],
        );
        let r2 = rel(&[0, 1], &[vec![1.0, 1.0], vec![9.0, 9.0]]);
        let cx = JoinContext::new(&r1, &r2, JoinSpec::Equality, &[]).unwrap();
        let k = 3;
        let all_left: Vec<u32> = vec![0, 1, 2];
        let all_right: Vec<u32> = vec![0, 1];
        let mut chk = JoinedCheck::new(&cx, k);

        // Exhaustive truth for each joined tuple.
        let m = cx.materialize();
        for (i, &(u, v)) in m.pairs.iter().enumerate() {
            let cand = m.row(i).to_vec();
            let exhaustive = m
                .pairs
                .iter()
                .enumerate()
                .any(|(j, _)| j != i && k_dominates(m.row(j), &cand, k));
            assert_eq!(
                chk.dominated_via_left(&all_left, &cand),
                exhaustive,
                "left check for ({u},{v})"
            );
            assert_eq!(
                chk.dominated_via_right(&all_right, &cand),
                exhaustive,
                "right check for ({u},{v})"
            );
            assert_eq!(
                chk.dominated_via_both(&all_left, &all_right, &cand),
                exhaustive,
                "both check for ({u},{v})"
            );
        }
    }

    #[test]
    fn restricting_targets_restricts_dominators() {
        // (2.0, 2.0) in group 0 is dominated only via u = 0.
        let r1 = rel(&[0, 0], &[vec![1.0, 1.0], vec![2.0, 2.0]]);
        let r2 = rel(&[0], &[vec![1.0, 1.0]]);
        let cx = JoinContext::new(&r1, &r2, JoinSpec::Equality, &[]).unwrap();
        let mut chk = JoinedCheck::new(&cx, 4);
        let cand = cx.joined_row(1, 0);
        assert!(chk.dominated_via_left(&[0], &cand));
        assert!(!chk.dominated_via_left(&[1], &cand));
        assert!(chk.dominated_via_both(&[0], &[0], &cand));
        assert!(!chk.dominated_via_both(&[1], &[0], &cand));
    }

    #[test]
    fn mask_is_cleared_between_calls() {
        let r1 = rel(&[0, 0], &[vec![1.0, 1.0], vec![2.0, 2.0]]);
        let r2 = rel(&[0, 0], &[vec![1.0, 1.0], vec![5.0, 5.0]]);
        let cx = JoinContext::new(&r1, &r2, JoinSpec::Equality, &[]).unwrap();
        let mut chk = JoinedCheck::new(&cx, 4);
        let cand = cx.joined_row(1, 0);
        assert!(chk.dominated_via_both(&[0], &[0], &cand));
        // Second call with a right-target set that excludes v = 0: the
        // mask from the first call must not leak (joined(0,1) = (1,1,5,5)
        // does not dominate cand = (2,2,1,1)).
        assert!(!chk.dominated_via_both(&[0], &[1], &cand));
    }
}
