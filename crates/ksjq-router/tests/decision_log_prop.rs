//! Crash-safety properties of the router's two-phase decision WAL.
//!
//! The decision log reuses the checksummed record codec from
//! `ksjq-server::durability`, so the byte-level torn-tail and bit-flip
//! guarantees are already proven there. These properties cover the
//! layer above: for *every* truncation point of a real decision-log
//! history — not just record boundaries — `DecisionLog::open` must
//! recover exactly the in-doubt state described by the records that fit
//! whole, and a single flipped bit must never surface a corrupted
//! transaction (the record dies on its CRC, or the flip only touched
//! the seq/epoch stamp the CRC deliberately does not cover).

use ksjq_router::{Decision, DecisionLog, TxnKind};
use ksjq_server::durability::read_records;
use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "ksjq-dlog-prop-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// The recovery-relevant view of one open transaction, as both the
/// model and `DecisionLog::open` report it.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
struct ModelTxn {
    kind: String,
    name: String,
    decision: Option<String>,
    done: BTreeSet<(usize, usize)>,
}

/// Replay decision-record payloads the way recovery must: records for
/// unknown txids are ignored (their `END` fell in an earlier, compacted
/// prefix), later records win, `OUTCOME failed` cancels an earlier ok.
fn model(payloads: &[Vec<u8>]) -> BTreeMap<u64, ModelTxn> {
    let mut open: BTreeMap<u64, ModelTxn> = BTreeMap::new();
    for payload in payloads {
        let text = String::from_utf8(payload.clone()).expect("decision payloads are UTF-8");
        let mut words = text.split_whitespace();
        let verb = words.next().expect("non-empty record");
        let txid: u64 = words.next().expect("txid").parse().expect("numeric txid");
        match verb {
            "BEGIN" => {
                open.insert(
                    txid,
                    ModelTxn {
                        kind: words.next().expect("kind").into(),
                        name: words.next().expect("name").into(),
                        ..ModelTxn::default()
                    },
                );
            }
            "DECIDE" => {
                if let Some(txn) = open.get_mut(&txid) {
                    txn.decision = Some(words.next().expect("decision").into());
                }
            }
            "OUTCOME" => {
                let shard: usize = words.next().expect("shard").parse().unwrap();
                let replica: usize = words.next().expect("replica").parse().unwrap();
                let ok = words.next() == Some("ok");
                if let Some(txn) = open.get_mut(&txid) {
                    if ok {
                        txn.done.insert((shard, replica));
                    } else {
                        txn.done.remove(&(shard, replica));
                    }
                }
            }
            "END" => {
                open.remove(&txid);
            }
            other => panic!("unknown decision verb {other:?}"),
        }
    }
    open
}

/// What `DecisionLog::open` replayed, shaped like the model.
fn observe(dir: &Path) -> BTreeMap<u64, ModelTxn> {
    let (_log, pending) = DecisionLog::open(dir, None).expect("recovery never errors here");
    pending
        .into_iter()
        .map(|txn| {
            (
                txn.txid,
                ModelTxn {
                    kind: txn.kind.to_string(),
                    name: txn.name.clone(),
                    decision: txn.decision.map(|d| d.to_string()),
                    done: txn.done,
                },
            )
        })
        .collect()
}

/// Drive a seeded op sequence through a fresh log; returns the raw WAL
/// and snapshot bytes the history left behind.
fn build_history(dir: &Path, ops: &[u8]) -> (Vec<u8>, Vec<u8>) {
    let (mut log, pending) = DecisionLog::open(dir, None).unwrap();
    assert!(pending.is_empty(), "fresh directory replays nothing");
    let mut live: Vec<u64> = Vec::new();
    for &op in ops {
        let pick = (op / 8) as usize;
        match op % 8 {
            0 | 1 => {
                let kind = if op % 2 == 0 {
                    TxnKind::Load
                } else {
                    TxnKind::Append
                };
                live.push(log.begin(kind, &format!("rel{}", op % 3)).unwrap());
            }
            2 | 3 if !live.is_empty() => {
                let decision = if op % 8 == 2 {
                    Decision::Commit
                } else {
                    Decision::Abort
                };
                log.decide(live[pick % live.len()], decision).unwrap();
            }
            4 | 5 if !live.is_empty() => {
                let txid = live[pick % live.len()];
                log.outcome(txid, (op % 2) as usize, (op % 3) as usize, op % 4 != 0)
                    .unwrap();
            }
            6 | 7 if !live.is_empty() => {
                let txid = live.remove(pick % live.len());
                log.end(txid).unwrap();
            }
            _ => {}
        }
    }
    (
        std::fs::read(dir.join("wal.ksjq")).unwrap(),
        std::fs::read(dir.join("snapshot.ksjq")).unwrap(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// kill -9 at an arbitrary byte of the decision WAL: restart must
    /// replay exactly the in-doubt state of the whole-record prefix —
    /// pre- or post-record, never torn — and fresh txids must never
    /// collide with replayed ones.
    #[test]
    fn every_truncation_recovers_a_whole_record_prefix(
        ops in prop::collection::vec(0u8..=255, 4..24)
    ) {
        let dir = tmpdir("hist");
        let (wal, snapshot) = build_history(&dir, &ops);
        let (records, _valid) = read_records(&wal);

        // Every record boundary and its neighbours, plus interior cuts.
        let mut boundaries = vec![0usize];
        for r in &records {
            boundaries.push(boundaries.last().unwrap() + 28 + r.payload.len());
        }
        let mut cuts: Vec<usize> = Vec::new();
        for &b in &boundaries {
            for c in [b.saturating_sub(1), b, b + 1, b + 15] {
                cuts.push(c.min(wal.len()));
            }
        }
        cuts.sort_unstable();
        cuts.dedup();

        for cut in cuts {
            let crash = tmpdir(&format!("cut{cut}"));
            std::fs::write(crash.join("snapshot.ksjq"), &snapshot).unwrap();
            std::fs::write(crash.join("wal.ksjq"), &wal[..cut]).unwrap();
            let (kept, _) = read_records(&wal[..cut]);
            let payloads: Vec<Vec<u8>> = kept.iter().map(|r| r.payload.clone()).collect();
            let want = model(&payloads);
            prop_assert_eq!(observe(&crash), want.clone(), "cut={}", cut);

            // A post-crash router must hand out txids strictly above
            // everything the surviving prefix ever recorded, or a new
            // transaction's records would smear into a replayed one.
            let max_seen = payloads
                .iter()
                .filter_map(|p| {
                    let text = String::from_utf8(p.clone()).unwrap();
                    text.split_whitespace().nth(1)?.parse::<u64>().ok()
                })
                .max()
                .unwrap_or(0);
            let (mut log, _) = DecisionLog::open(&crash, None).unwrap();
            let fresh = log.begin(TxnKind::Load, "post").unwrap();
            prop_assert!(fresh > max_seen, "cut={}: txid {} reused (max {})", cut, fresh, max_seen);
            let _ = std::fs::remove_dir_all(&crash);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A single bit flip anywhere in the decision WAL never corrupts
    /// recovery: `open` still succeeds, and the replayed state matches
    /// the records whose CRCs survived.
    #[test]
    fn bit_flips_never_corrupt_recovery(
        ops in prop::collection::vec(0u8..=255, 4..24),
        at_scaled in 0u32..u32::MAX,
        bit in 0u8..8
    ) {
        let dir = tmpdir("flip-hist");
        let (wal, snapshot) = build_history(&dir, &ops);
        // An all-no-op history leaves an empty WAL — nothing to flip.
        if !wal.is_empty() {
            let at = at_scaled as usize % wal.len();
            let mut evil = wal.clone();
            evil[at] ^= 1 << bit;

            let crash = tmpdir("flip");
            std::fs::write(crash.join("snapshot.ksjq"), &snapshot).unwrap();
            std::fs::write(crash.join("wal.ksjq"), &evil).unwrap();
            let (kept, _) = read_records(&evil);
            let payloads: Vec<Vec<u8>> = kept.iter().map(|r| r.payload.clone()).collect();
            prop_assert_eq!(
                observe(&crash),
                model(&payloads),
                "flip at byte {} bit {}",
                at,
                bit
            );
            let _ = std::fs::remove_dir_all(&crash);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
