//! The dominance comparison kernel.
//!
//! Everything in this module operates on *normalised* attribute slices
//! (lower is better in every position — see [`crate::Preference`]).
//!
//! Definitions (paper Sec. 2):
//!
//! * `u` **dominates** `v` (`u ≻ v`) iff `u[i] ≤ v[i]` for all `i` and
//!   `u[j] < v[j]` for at least one `j`.
//! * `u` ***k*-dominates** `v` (`u ≻ₖ v`) iff `u[i] ≤ v[i]` in at least `k`
//!   positions and `u[j] < v[j]` in at least one position.
//!
//! The second definition is stated in the paper as "better or equal in at
//! least *k* attributes and strictly better in at least one"; because a
//! strictly-better attribute is always also a better-or-equal attribute, this
//! is equivalent to Chan et al.'s original formulation (strictly better in at
//! least one *of the k*): whenever `|{i : u_i ≤ v_i}| ≥ k` and a strict
//! attribute exists, a k-subset containing the strict attribute exists too.
//!
//! These functions are the hottest code in the workspace; they are written
//! as simple branch-light loops over slices so LLVM can vectorise the
//! counting and so callers can rely on early abandonment.

/// The `≤` / `<` position counts between two equal-length tuples.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DomCounts {
    /// Number of positions where `u[i] <= v[i]`.
    pub le: u32,
    /// Number of positions where `u[i] < v[i]`.
    pub lt: u32,
}

impl DomCounts {
    /// Combine counts from two disjoint attribute segments (e.g. the two
    /// halves of a joined tuple).
    #[inline]
    pub fn merge(self, other: DomCounts) -> DomCounts {
        DomCounts {
            le: self.le + other.le,
            lt: self.lt + other.lt,
        }
    }

    /// Does a tuple with these counts (out of `d` attributes total)
    /// k-dominate the other tuple?
    #[inline]
    pub fn k_dominates(self, k: usize) -> bool {
        self.le as usize >= k && self.lt >= 1
    }

    /// Does a tuple with these counts fully dominate the other (requires the
    /// total attribute count `d`)?
    #[inline]
    pub fn dominates(self, d: usize) -> bool {
        self.le as usize == d && self.lt >= 1
    }
}

/// Count the `≤` and `<` positions of `u` versus `v`.
///
/// # Panics
///
/// Debug builds assert the slices have equal length; release builds iterate
/// over the shorter one.
#[inline]
pub fn dom_counts(u: &[f64], v: &[f64]) -> DomCounts {
    debug_assert_eq!(
        u.len(),
        v.len(),
        "dominance between tuples of unequal arity"
    );
    let mut le = 0u32;
    let mut lt = 0u32;
    for (a, b) in u.iter().zip(v.iter()) {
        le += (a <= b) as u32;
        lt += (a < b) as u32;
    }
    DomCounts { le, lt }
}

/// Full (Pareto) dominance: `u ≻ v`.
///
/// Early-exits on the first position where `u` is worse.
#[inline]
pub fn dominates(u: &[f64], v: &[f64]) -> bool {
    debug_assert_eq!(u.len(), v.len());
    let mut strict = false;
    for (a, b) in u.iter().zip(v.iter()) {
        if a > b {
            return false;
        }
        strict |= a < b;
    }
    strict
}

/// *k*-dominance: `u ≻ₖ v`.
///
/// Early-abandons as soon as the remaining positions cannot lift the `≤`
/// count to `k` any more, which matters in the anti-correlated workloads
/// where most comparisons fail.
#[inline]
pub fn k_dominates(u: &[f64], v: &[f64], k: usize) -> bool {
    debug_assert_eq!(u.len(), v.len());
    let d = u.len();
    if k > d {
        return false;
    }
    let mut le = 0usize;
    let mut lt = false;
    for i in 0..d {
        let (a, b) = (u[i], v[i]);
        le += (a <= b) as usize;
        lt |= a < b;
        // Even if every remaining position were `<=`, we could not reach k.
        if le + (d - i - 1) < k {
            return false;
        }
    }
    le >= k && lt
}

/// Count the `≤` / `<` positions of one attribute *segment*: `u`'s
/// attributes at `attrs` versus the dense slice `v` (`v[i]` pairs with
/// `u[attrs[i]]`).
///
/// This is the split-side half of a joined-tuple dominance test: a joined
/// vector lays out `[left locals…, right locals…, aggregates…]`, so the
/// left leg of a dominator is compared against `cand[0..l1]` through the
/// left relation's local attribute indices — once per leg, not once per
/// partner pair. Merge the two halves (plus the aggregate counts) with
/// [`DomCounts::merge`]; the totals are identical to [`dom_counts`] on the
/// materialised joined rows.
#[inline]
pub fn dom_counts_partial(u: &[f64], attrs: &[usize], v: &[f64]) -> DomCounts {
    debug_assert_eq!(
        attrs.len(),
        v.len(),
        "segment length must match the attribute selection"
    );
    let mut le = 0u32;
    let mut lt = 0u32;
    for (&b, &attr) in v.iter().zip(attrs.iter()) {
        let a = u[attr];
        le += (a <= b) as u32;
        lt += (a < b) as u32;
    }
    DomCounts { le, lt }
}

/// Count `≤` / `<` positions of every row of a contiguous row-major
/// `block` (arity `v.len()`) against the single tuple `v`, appending one
/// [`DomCounts`] per row to `out`.
///
/// The loop is branch-free over a dense block so LLVM can vectorise the
/// counting; callers that need a filtered id set (e.g. target-set
/// construction) post-filter the counts.
///
/// # Panics
///
/// Debug builds assert `block.len()` is a multiple of `v.len()`; `v` must
/// be non-empty.
pub fn dom_counts_block(block: &[f64], v: &[f64], out: &mut Vec<DomCounts>) {
    let d = v.len();
    assert!(d > 0, "dom_counts_block requires at least one attribute");
    debug_assert_eq!(block.len() % d, 0, "block length must be a multiple of d");
    out.reserve(block.len() / d);
    for row in block.chunks_exact(d) {
        let mut le = 0u32;
        let mut lt = 0u32;
        for (a, b) in row.iter().zip(v.iter()) {
            le += (a <= b) as u32;
            lt += (a < b) as u32;
        }
        out.push(DomCounts { le, lt });
    }
}

/// Lane width of the columnar accumulators: counts are kept in blocks of
/// this many `u32` lanes so the compiler can hold one block in vector
/// registers across the attribute sweep (stable-rust autovectorisation —
/// no `std::simd`).
pub const LANES: usize = 16;

/// Accumulate one attribute's comparisons into per-tuple `≤` / `<`
/// counters: `le[i] += (col[i] <= b)`, `lt[i] += (col[i] < b)`.
///
/// This is the stride-1 inner step every columnar kernel is built from:
/// `col` is one contiguous attribute column, `b` the candidate's value of
/// that attribute. The loop runs in [`LANES`]-wide blocks of `u32` lane
/// accumulators; the scalar tail handles `col.len() % LANES`.
///
/// # Panics
///
/// Debug builds assert `le` and `lt` are at least as long as `col`.
#[inline]
pub fn accumulate_le_lt(col: &[f64], b: f64, le: &mut [u32], lt: &mut [u32]) {
    debug_assert!(le.len() >= col.len() && lt.len() >= col.len());
    let mut chunks = col.chunks_exact(LANES);
    let mut le_chunks = le.chunks_exact_mut(LANES);
    let mut lt_chunks = lt.chunks_exact_mut(LANES);
    for ((c, el), tl) in (&mut chunks).zip(&mut le_chunks).zip(&mut lt_chunks) {
        // One lane block: the compiler keeps these 16 u32 accumulators in
        // vector registers for the whole chunk.
        for j in 0..LANES {
            el[j] += (c[j] <= b) as u32;
            tl[j] += (c[j] < b) as u32;
        }
    }
    let tail = chunks.remainder();
    let start = col.len() - tail.len();
    for (j, &x) in tail.iter().enumerate() {
        le[start + j] += (x <= b) as u32;
        lt[start + j] += (x < b) as u32;
    }
}

/// Columnar (attribute-major) form of [`dom_counts_block`]: count the
/// `≤` / `<` positions of **every** tuple of a relation against `v`,
/// reading the [`crate::Relation::columns`] layout (`cols[a·n..(a+1)·n]`
/// is attribute `a`'s column over `n` tuples) so each attribute sweeps
/// stride-1. Appends one [`DomCounts`] per tuple, id order — identical
/// output to [`dom_counts_block`] over the row-major storage (the
/// property suite enforces this).
///
/// This is exactly [`dom_counts_partial_block_columnar`] with the
/// identity attribute selection `0..v.len()`.
///
/// # Panics
///
/// `v` must be non-empty; debug builds assert `cols.len() == n · v.len()`.
pub fn dom_counts_block_columnar(cols: &[f64], n: usize, v: &[f64], out: &mut Vec<DomCounts>) {
    let d = v.len();
    assert!(
        d > 0,
        "dom_counts_block_columnar requires at least one attribute"
    );
    debug_assert_eq!(cols.len(), n * d, "column storage must be n · d values");
    let attrs: Vec<usize> = (0..d).collect();
    dom_counts_partial_block_columnar(cols, n, &attrs, v, out);
}

/// Columnar form of [`dom_counts_partial`], batched over a whole relation:
/// count every tuple's *selected* attributes (`attrs[i]`, paired with the
/// dense segment value `v[i]`) against `v`, reading contiguous columns.
///
/// This is the split kernel's indexed-segment count as a stride-1 sweep:
/// where the row-major [`dom_counts_partial`] gathers `u[attrs[i]]` across
/// one interleaved row per call, this walks each selected column once for
/// all `n` tuples. Appending `out[t]` equals
/// `dom_counts_partial(row_t, attrs, v)` for every tuple `t` — also
/// property-tested.
///
/// Allocates its lane scratch internally; hot loops that call this per
/// probe (target-set construction, dominator generation) should use
/// [`dom_counts_partial_block_columnar_into`] with reusable buffers
/// instead.
///
/// # Panics
///
/// Debug builds assert `attrs.len() == v.len()` and that `cols` holds
/// whole columns (`cols.len()` a multiple of `n`).
pub fn dom_counts_partial_block_columnar(
    cols: &[f64],
    n: usize,
    attrs: &[usize],
    v: &[f64],
    out: &mut Vec<DomCounts>,
) {
    let mut le = Vec::new();
    let mut lt = Vec::new();
    dom_counts_partial_block_columnar_into(cols, n, attrs, v, &mut le, &mut lt);
    out.reserve(n);
    for i in 0..n {
        out.push(DomCounts {
            le: le[i],
            lt: lt[i],
        });
    }
}

/// [`dom_counts_partial_block_columnar`] into caller-owned `≤` / `<`
/// buffers: `le`/`lt` are cleared, resized to `n` and filled (struct-of-
/// arrays output — `le[t]`/`lt[t]` are tuple `t`'s counts). Reusing the
/// buffers across probes removes all per-call heap traffic from the
/// `O(n²)` dominator-generation sweep.
pub fn dom_counts_partial_block_columnar_into(
    cols: &[f64],
    n: usize,
    attrs: &[usize],
    v: &[f64],
    le: &mut Vec<u32>,
    lt: &mut Vec<u32>,
) {
    debug_assert_eq!(
        attrs.len(),
        v.len(),
        "segment length must match the attribute selection"
    );
    debug_assert!(n == 0 || cols.len().is_multiple_of(n));
    le.clear();
    lt.clear();
    le.resize(n, 0);
    lt.resize(n, 0);
    for (&attr, &b) in attrs.iter().zip(v.iter()) {
        accumulate_le_lt(&cols[attr * n..(attr + 1) * n], b, le, lt);
    }
}

/// Is `u` strictly better than `v` in at least one position?
#[inline]
pub fn strictly_better_somewhere(u: &[f64], v: &[f64]) -> bool {
    u.iter().zip(v.iter()).any(|(a, b)| a < b)
}

/// Count positions where `u[i] == v[i]` (used by the Unique Value Property
/// checks and target-set augmentation, paper Sec. 5.5).
#[inline]
pub fn equal_count(u: &[f64], v: &[f64]) -> usize {
    debug_assert_eq!(u.len(), v.len());
    u.iter().zip(v.iter()).filter(|(a, b)| a == b).count()
}

/// Do `u` and `v` share at least `m` equal attribute values?
///
/// Early-abandons symmetrically to [`k_dominates`].
#[inline]
pub fn shares_at_least(u: &[f64], v: &[f64], m: usize) -> bool {
    debug_assert_eq!(u.len(), v.len());
    let d = u.len();
    if m > d {
        return false;
    }
    let mut eq = 0usize;
    for i in 0..d {
        eq += (u[i] == v[i]) as usize;
        if eq + (d - i - 1) < m {
            return false;
        }
    }
    eq >= m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dom_counts_basic() {
        let u = [1.0, 2.0, 3.0];
        let v = [1.0, 3.0, 2.0];
        let c = dom_counts(&u, &v);
        assert_eq!(c, DomCounts { le: 2, lt: 1 });
    }

    #[test]
    fn full_dominance() {
        assert!(dominates(&[1.0, 2.0], &[1.0, 3.0]));
        assert!(!dominates(&[1.0, 3.0], &[1.0, 2.0]));
        // Equal tuples never dominate each other.
        assert!(!dominates(&[1.0, 2.0], &[1.0, 2.0]));
    }

    #[test]
    fn full_dominance_is_asymmetric() {
        let u = [1.0, 2.0];
        let v = [2.0, 3.0];
        assert!(dominates(&u, &v));
        assert!(!dominates(&v, &u));
    }

    #[test]
    fn k_dominance_equals_full_when_k_is_d() {
        let u = [1.0, 2.0, 5.0];
        let v = [2.0, 3.0, 4.0];
        assert_eq!(k_dominates(&u, &v, 3), dominates(&u, &v));
        let w = [2.0, 3.0, 6.0];
        assert_eq!(k_dominates(&u, &w, 3), dominates(&u, &w));
    }

    #[test]
    fn k_dominance_relaxes_full() {
        // u is better in 2 of 3 attributes, worse in the third.
        let u = [1.0, 1.0, 9.0];
        let v = [2.0, 2.0, 1.0];
        assert!(!dominates(&u, &v));
        assert!(k_dominates(&u, &v, 2));
        assert!(!k_dominates(&u, &v, 3));
    }

    #[test]
    fn k_dominance_can_be_mutual_when_k_small() {
        // With k <= d/2 two tuples can k-dominate each other (paper Sec. 2.2).
        let u = [1.0, 9.0];
        let v = [9.0, 1.0];
        assert!(k_dominates(&u, &v, 1));
        assert!(k_dominates(&v, &u, 1));
    }

    #[test]
    fn k_dominance_requires_strict() {
        let u = [1.0, 2.0];
        assert!(!k_dominates(&u, &u, 1));
        assert!(!k_dominates(&u, &u, 2));
    }

    #[test]
    fn k_larger_than_d_never_dominates() {
        assert!(!k_dominates(&[1.0], &[2.0], 2));
    }

    #[test]
    fn equal_count_and_shares() {
        let u = [1.0, 2.0, 3.0, 4.0];
        let v = [1.0, 9.0, 3.0, 0.0];
        assert_eq!(equal_count(&u, &v), 2);
        assert!(shares_at_least(&u, &v, 2));
        assert!(!shares_at_least(&u, &v, 3));
        assert!(!shares_at_least(&u, &v, 5));
    }

    #[test]
    fn merge_counts() {
        let a = DomCounts { le: 2, lt: 1 };
        let b = DomCounts { le: 3, lt: 0 };
        assert_eq!(a.merge(b), DomCounts { le: 5, lt: 1 });
        assert!(a.merge(b).k_dominates(5));
        assert!(!a.merge(b).k_dominates(6));
        assert!(!b.k_dominates(3)); // no strict position
    }

    #[test]
    fn partial_counts_select_attributes() {
        let u = [9.0, 1.0, 2.0, 9.0];
        let v = [1.0, 3.0];
        // Compare u[1] vs v[0] and u[2] vs v[1].
        let c = dom_counts_partial(&u, &[1, 2], &v);
        assert_eq!(c, DomCounts { le: 2, lt: 1 });
        // Empty selection contributes nothing.
        assert_eq!(dom_counts_partial(&u, &[], &[]), DomCounts { le: 0, lt: 0 });
    }

    #[test]
    fn partial_merge_equals_full_counts() {
        // Splitting a tuple into segments and merging the partial counts
        // reproduces dom_counts on the whole tuple.
        let u = [1.0, 5.0, 2.0, 4.0, 3.0];
        let v = [2.0, 5.0, 1.0, 9.0, 3.0];
        let full = dom_counts(&u, &v);
        let left = dom_counts_partial(&u, &[0, 1], &v[..2]);
        let right = dom_counts_partial(&u, &[2, 3, 4], &v[2..]);
        assert_eq!(left.merge(right), full);
    }

    #[test]
    fn block_counts_match_per_row_counts() {
        let block = [
            1.0, 2.0, 3.0, //
            3.0, 2.0, 1.0, //
            2.0, 2.0, 2.0, //
        ];
        let v = [2.0, 2.0, 2.0];
        let mut out = Vec::new();
        dom_counts_block(&block, &v, &mut out);
        assert_eq!(out.len(), 3);
        for (i, counts) in out.iter().enumerate() {
            assert_eq!(
                *counts,
                dom_counts(&block[i * 3..(i + 1) * 3], &v),
                "row {i}"
            );
        }
        // Appends without clearing.
        dom_counts_block(&block[..3], &v, &mut out);
        assert_eq!(out.len(), 4);
        assert_eq!(out[3], out[0]);
    }

    /// Columnar and row-major blocked counts must be identical on the same
    /// data — including a tail shorter than one lane block and an exact
    /// multiple of [`LANES`].
    #[test]
    fn columnar_block_matches_row_major_block() {
        let mut state = 77u64;
        let mut next = move |m: u64| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) % m
        };
        for n in [1usize, 7, LANES, LANES + 3, 4 * LANES, 4 * LANES + 9] {
            let d = 5;
            let rows: Vec<f64> = (0..n * d).map(|_| next(6) as f64).collect();
            let mut cols = vec![0.0; n * d];
            for i in 0..n {
                for a in 0..d {
                    cols[a * n + i] = rows[i * d + a];
                }
            }
            let v: Vec<f64> = (0..d).map(|_| next(6) as f64).collect();
            let mut row_major = Vec::new();
            dom_counts_block(&rows, &v, &mut row_major);
            let mut columnar = Vec::new();
            dom_counts_block_columnar(&cols, n, &v, &mut columnar);
            assert_eq!(row_major, columnar, "n={n}");
            // Appends without clearing, like the row-major form.
            dom_counts_block_columnar(&cols, n, &v, &mut columnar);
            assert_eq!(columnar.len(), 2 * n);
            assert_eq!(&columnar[..n], &columnar[n..]);
        }
    }

    /// The batched columnar partial counts must equal the per-row
    /// `dom_counts_partial` for every tuple and attribute selection.
    #[test]
    fn columnar_partial_matches_per_row_partial() {
        let n = 2 * LANES + 5;
        let d = 4;
        let mut state = 3u64;
        let mut next = move |m: u64| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) % m
        };
        let rows: Vec<f64> = (0..n * d).map(|_| next(5) as f64).collect();
        let mut cols = vec![0.0; n * d];
        for i in 0..n {
            for a in 0..d {
                cols[a * n + i] = rows[i * d + a];
            }
        }
        for attrs in [vec![0usize, 2], vec![3], vec![1, 2, 3], vec![]] {
            let v: Vec<f64> = attrs.iter().map(|_| next(5) as f64).collect();
            let mut got = Vec::new();
            dom_counts_partial_block_columnar(&cols, n, &attrs, &v, &mut got);
            assert_eq!(got.len(), n);
            for t in 0..n {
                let expect = dom_counts_partial(&rows[t * d..(t + 1) * d], &attrs, &v);
                assert_eq!(got[t], expect, "tuple {t} attrs {attrs:?}");
            }
        }
        // n = 0 appends nothing and must not divide by zero.
        let mut empty = Vec::new();
        dom_counts_partial_block_columnar(&[], 0, &[0], &[1.0], &mut empty);
        assert!(empty.is_empty());
    }

    #[test]
    fn accumulate_le_lt_lane_tail() {
        let col: Vec<f64> = (0..LANES as u64 + 3).map(|i| i as f64).collect();
        let mut le = vec![0u32; col.len()];
        let mut lt = vec![0u32; col.len()];
        accumulate_le_lt(&col, 2.0, &mut le, &mut lt);
        accumulate_le_lt(&col, 2.0, &mut le, &mut lt);
        for (i, &x) in col.iter().enumerate() {
            assert_eq!(le[i], 2 * (x <= 2.0) as u32, "le at {i}");
            assert_eq!(lt[i], 2 * (x < 2.0) as u32, "lt at {i}");
        }
    }

    #[test]
    fn monotone_in_k() {
        // If u k-dominates v then u j-dominates v for every j <= k.
        let u = [1.0, 1.0, 5.0, 2.0];
        let v = [2.0, 2.0, 1.0, 2.0];
        let max_k = (1..=4).rev().find(|&k| k_dominates(&u, &v, k)).unwrap();
        for j in 1..=max_k {
            assert!(k_dominates(&u, &v, j), "failed at j={j}");
        }
    }
}
