//! The router's decision WAL: what makes a two-phase LOAD/APPEND
//! survive a coordinator crash.
//!
//! PR 7's distributed commit is atomic only while the router stays
//! alive: a crash between backend `COMMIT`s leaves shards split between
//! staged and committed state, and the shard WALs faithfully *preserve*
//! that split without being able to *resolve* it — only the coordinator
//! knew the decision. This module makes the decision durable. Every
//! two-phase transaction logs, in the same checksummed
//! `magic|seq|epoch|len|crc32|payload` record format the shard servers
//! use ([`ksjq_server::durability::record`]):
//!
//! | payload line                                 | logged                             |
//! |----------------------------------------------|------------------------------------|
//! | `BEGIN <txid> <load\|append> <name>`         | before the first `STAGE` is sent   |
//! | `DECIDE <txid> <commit\|abort>`              | before the first phase-two frame   |
//! | `OUTCOME <txid> <shard> <replica> <ok\|failed>` | after that replica's phase-two ack |
//! | `END <txid>`                                 | once every replica is resolved     |
//! | `NEXT <txid>`                                | snapshot-only: txid high-water mark |
//!
//! The `txid` lives *inside* the payload rather than piggybacking on the
//! record sequence number: compaction re-stamps sequences, and the
//! transaction identity must survive it. The `NEXT` record exists for
//! the same reason — compaction drops every `END`ed transaction, and
//! without a persisted high-water mark a restart after a quiescent
//! compaction would hand out txids it had already used.
//!
//! On restart, [`DecisionLog::open`] replays the log and returns every
//! transaction without an `END` — the in-doubt set. The resolution rules
//! are classic presumed-abort:
//!
//! * no `DECIDE` logged → no backend ever saw a `COMMIT` (the decision
//!   record is forced *before* phase two starts), so abort everywhere —
//!   `ABORT` is idempotent on the shard side;
//! * `DECIDE commit` → some replicas may have committed; ask each one
//!   `STAGED?` and `COMMIT` wherever the name is still pending. A
//!   replica with nothing staged either already committed or lost its
//!   stage to its own crash — both are caught up by replica resync;
//! * `DECIDE abort` → abort everywhere, as above.
//!
//! `OUTCOME ok` records let resolution skip replicas that already
//! acknowledged phase two before the crash.
//!
//! Rotation: past `max_bytes` the active log is sealed and — because an
//! open transaction is fully described by replaying its own records —
//! immediately compacted into a snapshot holding only the still-open
//! transactions. A quiescent router's decision log therefore stays a few
//! records long no matter how many loads it has coordinated.

use ksjq_server::durability::{self, Wal};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};

/// Which two-phase mutation a transaction coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxnKind {
    /// A distributed `LOAD` (stage-everywhere, commit-everywhere).
    Load,
    /// A distributed `APPEND` (staged deltas, committed everywhere).
    Append,
}

impl fmt::Display for TxnKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            TxnKind::Load => "load",
            TxnKind::Append => "append",
        })
    }
}

/// The coordinator's durable verdict on a transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// Every stage succeeded: commit everywhere.
    Commit,
    /// Something failed during staging: abort everywhere.
    Abort,
}

impl fmt::Display for Decision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Decision::Commit => "commit",
            Decision::Abort => "abort",
        })
    }
}

/// One logged transaction's reconstructed state — returned by
/// [`DecisionLog::open`] for every transaction without an `END` record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Txn {
    /// Payload-embedded transaction id (monotone per log).
    pub txid: u64,
    /// `LOAD` or `APPEND`.
    pub kind: TxnKind,
    /// The relation name the transaction stages under.
    pub name: String,
    /// The logged verdict, if phase two had begun.
    pub decision: Option<Decision>,
    /// `(shard, replica)` pairs whose phase-two frame was acknowledged
    /// (an `OUTCOME … ok` record) — resolution can skip these.
    pub done: BTreeSet<(usize, usize)>,
}

/// One parsed decision-log payload line.
#[derive(Debug, Clone, PartialEq)]
enum LogLine {
    Begin {
        txid: u64,
        kind: TxnKind,
        name: String,
    },
    Decide {
        txid: u64,
        decision: Decision,
    },
    Outcome {
        txid: u64,
        shard: usize,
        replica: usize,
        ok: bool,
    },
    End {
        txid: u64,
    },
    Next {
        txid: u64,
    },
}

impl LogLine {
    /// The smallest `next_txid` consistent with having replayed this
    /// record.
    fn txid_floor(&self) -> u64 {
        match *self {
            LogLine::Begin { txid, .. }
            | LogLine::Decide { txid, .. }
            | LogLine::Outcome { txid, .. }
            | LogLine::End { txid } => txid + 1,
            LogLine::Next { txid } => txid,
        }
    }
}

/// Parse one payload line. Public within the crate for the property
/// tests; malformed lines are typed errors, never panics.
fn parse_line(line: &str) -> Result<LogLine, String> {
    let mut words = line.split_whitespace();
    let verb = words.next().unwrap_or("");
    let mut int = |what: &str| -> Result<u64, String> {
        words
            .next()
            .ok_or_else(|| format!("decision record {verb:?} is missing its {what}"))?
            .parse::<u64>()
            .map_err(|_| format!("decision record {verb:?} has a non-numeric {what}"))
    };
    let parsed = match verb {
        "BEGIN" => {
            let txid = int("txid")?;
            let kind = match words.next() {
                Some("load") => TxnKind::Load,
                Some("append") => TxnKind::Append,
                other => return Err(format!("BEGIN kind must be load|append, got {other:?}")),
            };
            let name = words.next().ok_or("BEGIN is missing the relation name")?;
            LogLine::Begin {
                txid,
                kind,
                name: name.to_string(),
            }
        }
        "DECIDE" => {
            let txid = int("txid")?;
            let decision = match words.next() {
                Some("commit") => Decision::Commit,
                Some("abort") => Decision::Abort,
                other => return Err(format!("DECIDE must be commit|abort, got {other:?}")),
            };
            LogLine::Decide { txid, decision }
        }
        "OUTCOME" => {
            let txid = int("txid")?;
            let shard = int("shard")? as usize;
            let replica = int("replica")? as usize;
            let ok = match words.next() {
                Some("ok") => true,
                Some("failed") => false,
                other => return Err(format!("OUTCOME must be ok|failed, got {other:?}")),
            };
            LogLine::Outcome {
                txid,
                shard,
                replica,
                ok,
            }
        }
        "END" => LogLine::End { txid: int("txid")? },
        "NEXT" => LogLine::Next { txid: int("txid")? },
        other => return Err(format!("unknown decision record verb {other:?}")),
    };
    if words.next().is_some() {
        return Err(format!("decision record {verb:?} has trailing words"));
    }
    Ok(parsed)
}

/// Fold one parsed line into the open-transaction map. Records for
/// unknown txids (an `END` compacted away from under them) are ignored —
/// replay must accept any clean prefix of its own output.
fn apply_line(open: &mut BTreeMap<u64, Txn>, line: LogLine) {
    match line {
        LogLine::Begin { txid, kind, name } => {
            open.insert(
                txid,
                Txn {
                    txid,
                    kind,
                    name,
                    decision: None,
                    done: BTreeSet::new(),
                },
            );
        }
        LogLine::Decide { txid, decision } => {
            if let Some(txn) = open.get_mut(&txid) {
                txn.decision = Some(decision);
            }
        }
        LogLine::Outcome {
            txid,
            shard,
            replica,
            ok,
        } => {
            if let Some(txn) = open.get_mut(&txid) {
                if ok {
                    txn.done.insert((shard, replica));
                } else {
                    txn.done.remove(&(shard, replica));
                }
            }
        }
        LogLine::End { txid } => {
            open.remove(&txid);
        }
        // The high-water mark is consumed by `open` via `txid_floor`,
        // not by the transaction map.
        LogLine::Next { .. } => {}
    }
}

/// Re-serialise the open transactions as payload lines — the decision
/// log's snapshot format *is* its replay format, exactly like the shard
/// catalog WAL.
fn snapshot_lines(open: &BTreeMap<u64, Txn>, next_txid: u64) -> Vec<String> {
    let mut lines = vec![format!("NEXT {next_txid}")];
    for txn in open.values() {
        lines.push(format!("BEGIN {} {} {}", txn.txid, txn.kind, txn.name));
        if let Some(decision) = txn.decision {
            lines.push(format!("DECIDE {} {decision}", txn.txid));
        }
        for &(shard, replica) in &txn.done {
            lines.push(format!("OUTCOME {} {shard} {replica} ok", txn.txid));
        }
    }
    lines
}

/// The router's durable two-phase transaction log.
#[derive(Debug)]
pub struct DecisionLog {
    wal: Wal,
    dir: PathBuf,
    /// Seal-and-compact the active log past this many bytes.
    max_bytes: Option<u64>,
    next_txid: u64,
    /// Transactions begun but not yet `END`ed, mirrored in memory so
    /// rotation can snapshot them without re-reading the log.
    open: BTreeMap<u64, Txn>,
    /// Records appended since open (the router's `wal_records=`).
    records: u64,
    /// Active-log seals since open (the router's `wal_segments=`).
    seals: u64,
}

impl DecisionLog {
    /// Replay (and compact) the decision log under `dir`, returning the
    /// log ready for new transactions plus every in-doubt transaction —
    /// begun but never `END`ed — in txid order. The caller must drive
    /// each one to committed-everywhere or aborted-everywhere before
    /// accepting traffic.
    ///
    /// # Errors
    ///
    /// I/O failures reading or rewriting the log, and corrupt payloads
    /// that a clean record checksum let through (truncated tails and
    /// bit flips are already discarded by record-level recovery).
    pub fn open(dir: &Path, max_bytes: Option<u64>) -> io::Result<(DecisionLog, Vec<Txn>)> {
        let recovery = durability::recover(dir)?;
        let mut open = BTreeMap::new();
        let mut next_txid = 1;
        for record in &recovery.records {
            let line = std::str::from_utf8(&record.payload).map_err(|_| {
                io::Error::other(format!("decision record {} is not UTF-8", record.seq))
            })?;
            let parsed = parse_line(line).map_err(|e| {
                io::Error::other(format!("decision record {} ({line:?}): {e}", record.seq))
            })?;
            next_txid = next_txid.max(parsed.txid_floor());
            apply_line(&mut open, parsed);
        }
        let lines = snapshot_lines(&open, next_txid);
        let wal = durability::compact(dir, &lines, recovery.last_seq, 0)?;
        let pending = open.values().cloned().collect();
        Ok((
            DecisionLog {
                wal,
                dir: dir.to_path_buf(),
                max_bytes,
                next_txid,
                open,
                records: 0,
                seals: 0,
            },
            pending,
        ))
    }

    /// Durably open a transaction; returns its txid. Forced to disk
    /// before this returns, so the first backend `STAGE` is only ever
    /// sent for a logged transaction.
    pub fn begin(&mut self, kind: TxnKind, name: &str) -> io::Result<u64> {
        let txid = self.next_txid;
        self.next_txid += 1;
        self.append(&format!("BEGIN {txid} {kind} {name}"))?;
        self.open.insert(
            txid,
            Txn {
                txid,
                kind,
                name: name.to_string(),
                decision: None,
                done: BTreeSet::new(),
            },
        );
        Ok(txid)
    }

    /// Durably record the commit/abort verdict — the linearisation point
    /// of the whole transaction. Forced to disk before the first
    /// phase-two frame is sent: a crash before this record presumes
    /// abort, a crash after it drives the logged decision to completion.
    pub fn decide(&mut self, txid: u64, decision: Decision) -> io::Result<()> {
        self.append(&format!("DECIDE {txid} {decision}"))?;
        if let Some(txn) = self.open.get_mut(&txid) {
            txn.decision = Some(decision);
        }
        Ok(())
    }

    /// Record one replica's phase-two acknowledgement (or failure), so
    /// post-crash resolution can skip work that already happened.
    pub fn outcome(&mut self, txid: u64, shard: usize, replica: usize, ok: bool) -> io::Result<()> {
        let verdict = if ok { "ok" } else { "failed" };
        self.append(&format!("OUTCOME {txid} {shard} {replica} {verdict}"))?;
        if let Some(txn) = self.open.get_mut(&txid) {
            if ok {
                txn.done.insert((shard, replica));
            } else {
                txn.done.remove(&(shard, replica));
            }
        }
        Ok(())
    }

    /// Close a fully-resolved transaction and rotate the log if it has
    /// outgrown `max_bytes`.
    pub fn end(&mut self, txid: u64) -> io::Result<()> {
        self.append(&format!("END {txid}"))?;
        self.open.remove(&txid);
        self.maybe_rotate();
        Ok(())
    }

    /// Records appended since [`open`](DecisionLog::open).
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Active-log seals (rotations) since [`open`](DecisionLog::open).
    pub fn seals(&self) -> u64 {
        self.seals
    }

    fn append(&mut self, line: &str) -> io::Result<()> {
        self.wal.append(0, line.as_bytes())?;
        self.records += 1;
        Ok(())
    }

    /// Seal and compact once the active log exceeds `max_bytes`. Unlike
    /// the shard catalog WAL there is no "mid-transaction" obstacle: an
    /// open transaction is fully described by its own records, so the
    /// snapshot can always absorb the sealed history immediately.
    /// Failures are logged and swallowed — the records that triggered
    /// rotation are already durable in the oversized log.
    fn maybe_rotate(&mut self) {
        let Some(limit) = self.max_bytes else {
            return;
        };
        if self.wal.active_bytes() <= limit {
            return;
        }
        match self.wal.seal() {
            Ok(true) => self.seals += 1,
            Ok(false) => return,
            Err(e) => {
                eprintln!("ksjq-routerd: decision WAL seal failed (rotation skipped): {e}");
                return;
            }
        }
        let lines = snapshot_lines(&self.open, self.next_txid);
        let last_seq = self.wal.next_seq().saturating_sub(1);
        match durability::compact(&self.dir, &lines, last_seq, 0) {
            Ok(fresh) => self.wal = fresh,
            Err(e) => {
                eprintln!("ksjq-routerd: decision WAL compaction failed (segments kept): {e}");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "ksjq-decision-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn fresh_log_has_no_pending_transactions() {
        let dir = tempdir("fresh");
        let (log, pending) = DecisionLog::open(&dir, None).unwrap();
        assert!(pending.is_empty());
        assert_eq!((log.records(), log.seals()), (0, 0));
    }

    #[test]
    fn ended_transactions_do_not_come_back() {
        let dir = tempdir("ended");
        {
            let (mut log, _) = DecisionLog::open(&dir, None).unwrap();
            let t = log.begin(TxnKind::Load, "t1").unwrap();
            log.decide(t, Decision::Commit).unwrap();
            log.outcome(t, 0, 0, true).unwrap();
            log.outcome(t, 1, 0, true).unwrap();
            log.end(t).unwrap();
        }
        let (_, pending) = DecisionLog::open(&dir, None).unwrap();
        assert!(pending.is_empty(), "{pending:?}");
    }

    #[test]
    fn open_transactions_replay_with_their_state() {
        let dir = tempdir("open");
        {
            let (mut log, _) = DecisionLog::open(&dir, None).unwrap();
            let a = log.begin(TxnKind::Load, "left").unwrap();
            let b = log.begin(TxnKind::Append, "right").unwrap();
            log.decide(b, Decision::Commit).unwrap();
            log.outcome(b, 0, 1, true).unwrap();
            log.outcome(b, 1, 0, false).unwrap();
            assert_ne!(a, b);
        }
        let (mut log, pending) = DecisionLog::open(&dir, None).unwrap();
        assert_eq!(pending.len(), 2);
        assert_eq!(pending[0].kind, TxnKind::Load);
        assert_eq!(pending[0].name, "left");
        assert_eq!(pending[0].decision, None);
        assert!(pending[0].done.is_empty());
        assert_eq!(pending[1].kind, TxnKind::Append);
        assert_eq!(pending[1].decision, Some(Decision::Commit));
        // The failed outcome for (1,0) cancelled nothing (never ok) and
        // (0,1) survives — resolution can skip it.
        assert_eq!(pending[1].done, BTreeSet::from([(0, 1)]));
        // txids never repeat across restarts.
        let next = log.begin(TxnKind::Load, "again").unwrap();
        assert!(next > pending[1].txid);
    }

    #[test]
    fn rotation_compacts_closed_history() {
        let dir = tempdir("rotate");
        let (mut log, _) = DecisionLog::open(&dir, Some(256)).unwrap();
        for i in 0..32 {
            let t = log.begin(TxnKind::Load, &format!("rel{i}")).unwrap();
            log.decide(t, Decision::Commit).unwrap();
            log.outcome(t, 0, 0, true).unwrap();
            log.end(t).unwrap();
        }
        assert!(log.seals() > 0, "256-byte cap must force rotation");
        assert!(
            log.wal.active_bytes() <= 256,
            "active log stays bounded, got {}",
            log.wal.active_bytes()
        );
        // Everything was closed, so nothing replays.
        drop(log);
        let (_, pending) = DecisionLog::open(&dir, Some(256)).unwrap();
        assert!(pending.is_empty());
    }

    #[test]
    fn rotation_preserves_open_transactions() {
        let dir = tempdir("rotate-open");
        let (mut log, _) = DecisionLog::open(&dir, Some(128)).unwrap();
        let held = log.begin(TxnKind::Append, "held").unwrap();
        log.decide(held, Decision::Commit).unwrap();
        for i in 0..32 {
            let t = log.begin(TxnKind::Load, &format!("rel{i}")).unwrap();
            log.decide(t, Decision::Abort).unwrap();
            log.end(t).unwrap();
        }
        assert!(log.seals() > 0);
        drop(log);
        let (_, pending) = DecisionLog::open(&dir, None).unwrap();
        assert_eq!(pending.len(), 1);
        assert_eq!(pending[0].txid, held);
        assert_eq!(pending[0].decision, Some(Decision::Commit));
    }

    #[test]
    fn malformed_lines_are_typed_errors() {
        for bad in [
            "",
            "FROB 1",
            "BEGIN x load t1",
            "BEGIN 1 munge t1",
            "BEGIN 1 load",
            "DECIDE 1 maybe",
            "OUTCOME 1 0 0 shrug",
            "OUTCOME 1 0 ok",
            "END",
            "END 1 extra",
        ] {
            assert!(parse_line(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn snapshot_lines_round_trip_through_the_parser() {
        let mut open = BTreeMap::new();
        apply_line(&mut open, parse_line("BEGIN 7 append flights").unwrap());
        apply_line(&mut open, parse_line("DECIDE 7 commit").unwrap());
        apply_line(&mut open, parse_line("OUTCOME 7 1 2 ok").unwrap());
        let lines = snapshot_lines(&open, 8);
        assert_eq!(lines[0], "NEXT 8", "high-water mark leads the snapshot");
        let mut replayed = BTreeMap::new();
        let mut floor = 0;
        for line in &lines {
            let parsed = parse_line(line).unwrap();
            floor = floor.max(parsed.txid_floor());
            apply_line(&mut replayed, parsed);
        }
        assert_eq!(open, replayed);
        assert_eq!(floor, 8);
    }

    #[test]
    fn quiescent_compaction_never_reuses_txids() {
        let dir = tempdir("high-water");
        let first = {
            let (mut log, _) = DecisionLog::open(&dir, None).unwrap();
            let t = log.begin(TxnKind::Load, "t1").unwrap();
            log.decide(t, Decision::Commit).unwrap();
            log.end(t).unwrap();
            t
        };
        // Everything ENDed, so reopening compacts the history away —
        // but the snapshot's NEXT record keeps the txid space moving.
        let (mut log, pending) = DecisionLog::open(&dir, None).unwrap();
        assert!(pending.is_empty());
        let fresh = log.begin(TxnKind::Append, "t2").unwrap();
        assert!(fresh > first, "txid {fresh} reused after compaction");
    }
}
