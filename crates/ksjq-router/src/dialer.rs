//! Per-session connection management with replica failover.
//!
//! Each router connection owns one [`Dialer`]: a set of independent
//! [`ShardDialer`]s (one per shard) so a scatter phase can hand each
//! shard's dialer to its own thread. Connections to backends are pooled
//! lazily per address and dropped on any transport or framing error —
//! a lockstep line protocol cannot be trusted after a desync.

use ksjq_server::{
    retry_with_backoff, ClientError, ClientResult, ConnectOptions, ErrorCode, KsjqClient,
};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Fan-out health counters, shared by every dialer of a router.
#[derive(Debug, Default)]
pub struct FanoutCounters {
    /// Backend calls retried (next replica or next round) after a
    /// transport failure.
    pub shard_retries: AtomicU64,
    /// Shard calls abandoned with every replica down.
    pub shard_errors: AtomicU64,
}

/// Retry/backoff knobs for backend calls.
#[derive(Debug, Clone, Copy)]
pub struct DialPolicy {
    /// Socket timeouts for backend connections.
    pub options: ConnectOptions,
    /// Full sweeps of a replica set before a shard counts as down.
    pub attempts: u32,
    /// Base backoff between sweeps (doubles, jittered, capped at 8×).
    pub backoff: Duration,
    /// Jitter seed (vary per process so fleets do not stampede).
    pub seed: u64,
}

impl Default for DialPolicy {
    fn default() -> Self {
        DialPolicy {
            options: ConnectOptions::all(Duration::from_secs(10)),
            attempts: 3,
            backoff: Duration::from_millis(50),
            seed: 1,
        }
    }
}

/// Pooled, failover-aware connections to one shard's replica set.
#[derive(Debug)]
pub struct ShardDialer {
    shard: usize,
    replicas: Vec<String>,
    conns: Vec<Option<KsjqClient>>,
    /// First replica tried — rotated per dialer so concurrent sessions
    /// spread read load across a replica set.
    start: usize,
    policy: DialPolicy,
    counters: Arc<FanoutCounters>,
}

impl ShardDialer {
    fn new(
        shard: usize,
        replicas: Vec<String>,
        start: usize,
        policy: DialPolicy,
        counters: Arc<FanoutCounters>,
    ) -> ShardDialer {
        let conns = replicas.iter().map(|_| None).collect();
        let start = start % replicas.len().max(1);
        ShardDialer {
            shard,
            replicas,
            conns,
            start,
            policy,
            counters,
        }
    }

    /// This dialer's shard index.
    pub fn shard(&self) -> usize {
        self.shard
    }

    /// Replica count.
    pub fn n_replicas(&self) -> usize {
        self.replicas.len()
    }

    fn try_replica<T>(
        &mut self,
        idx: usize,
        f: &mut impl FnMut(&mut KsjqClient) -> ClientResult<T>,
    ) -> ClientResult<T> {
        if self.conns[idx].is_none() {
            self.conns[idx] = Some(KsjqClient::connect_with(
                self.replicas[idx].as_str(),
                &self.policy.options,
            )?);
        }
        let client = self.conns[idx].as_mut().expect("just connected");
        let result = f(client);
        if matches!(
            result,
            Err(ClientError::Io(_)) | Err(ClientError::Protocol(_))
        ) {
            // Mid-exchange failure: the lockstep framing may be off by a
            // frame, so the connection is poisoned either way.
            self.conns[idx] = None;
        }
        result
    }

    /// Run `f` against one replica of this shard, failing over through
    /// the whole replica set (with backoff between sweeps) on transport
    /// errors — and on `ERR recovering` / `ERR busy`, which describe
    /// *that replica's* moment (mid-resync, shedding load), not the
    /// shard's data; a sibling may well answer. Every other `ERR` frame
    /// is a terminal *answer* — the next replica would say the same
    /// thing — and is returned immediately. In particular `ERR timeout`
    /// never fails over: the deadline is global, and a retry would only
    /// burn more of it.
    ///
    /// `f` may be invoked several times and must be idempotent from the
    /// backend's point of view (every fan-out command is).
    pub fn call<T>(
        &mut self,
        mut f: impl FnMut(&mut KsjqClient) -> ClientResult<T>,
    ) -> ClientResult<T> {
        let policy = self.policy;
        let n = self.replicas.len();
        let result = retry_with_backoff(
            policy.attempts,
            policy.backoff,
            policy.backoff * 8,
            policy.seed ^ self.shard as u64,
            |_round| {
                let mut last: Option<ClientError> = None;
                for i in 0..n {
                    let idx = (self.start + i) % n;
                    match self.try_replica(idx, &mut f) {
                        Err(e)
                            if matches!(e, ClientError::Io(_))
                                || matches!(
                                    e.code(),
                                    Some(ErrorCode::Recovering) | Some(ErrorCode::Busy)
                                ) =>
                        {
                            self.counters.shard_retries.fetch_add(1, Ordering::Relaxed);
                            last = Some(e);
                        }
                        terminal => return terminal,
                    }
                }
                Err(last.expect("n ≥ 1 replicas all failed"))
            },
        );
        if matches!(result, Err(ClientError::Io(_))) {
            self.counters.shard_errors.fetch_add(1, Ordering::Relaxed);
        }
        result
    }

    /// Run `f` against *one specific replica* (no failover), retrying
    /// transport failures with backoff. Catalog mutations use this: a
    /// `STAGE`/`COMMIT` must reach every replica, not any one of them.
    pub fn call_replica<T>(
        &mut self,
        idx: usize,
        mut f: impl FnMut(&mut KsjqClient) -> ClientResult<T>,
    ) -> ClientResult<T> {
        let policy = self.policy;
        let result = retry_with_backoff(
            policy.attempts,
            policy.backoff,
            policy.backoff * 8,
            policy.seed ^ (self.shard as u64) << 8 ^ idx as u64,
            |round| {
                if round > 0 {
                    self.counters.shard_retries.fetch_add(1, Ordering::Relaxed);
                }
                self.try_replica(idx, &mut f)
            },
        );
        if matches!(result, Err(ClientError::Io(_))) {
            self.counters.shard_errors.fetch_add(1, Ordering::Relaxed);
        }
        result
    }
}

/// One session's dialers, one per shard.
#[derive(Debug)]
pub struct Dialer {
    shards: Vec<ShardDialer>,
}

impl Dialer {
    /// Build dialers for a topology. `rotation` picks the first replica
    /// tried per shard (sessions pass an incrementing value).
    pub fn new(
        topology: &crate::topology::Topology,
        rotation: usize,
        policy: DialPolicy,
        counters: Arc<FanoutCounters>,
    ) -> Dialer {
        let shards = (0..topology.n_shards())
            .map(|s| {
                ShardDialer::new(
                    s,
                    topology.replicas(s).to_vec(),
                    rotation,
                    policy,
                    counters.clone(),
                )
            })
            .collect();
        Dialer { shards }
    }

    /// The dialer for shard `s`.
    pub fn shard_mut(&mut self, s: usize) -> &mut ShardDialer {
        &mut self.shards[s]
    }

    /// Mutable dialers for a subset of shards, in `which` order — the
    /// disjoint borrows a scatter phase hands to its threads.
    pub fn subset_mut(&mut self, which: &[usize]) -> Vec<&mut ShardDialer> {
        let mut picked: Vec<Option<&mut ShardDialer>> = self.shards.iter_mut().map(Some).collect();
        which
            .iter()
            .map(|&s| picked[s].take().expect("shard indices are distinct"))
            .collect()
    }
}
