//! Attribute preference directions.

use std::fmt;

/// The optimisation direction of a skyline attribute.
///
/// The KSJQ paper assumes, without loss of generality, that *lower* values
/// are preferred for every skyline attribute. This library keeps that
/// assumption in its internal storage (a `Max` attribute is negated when a
/// [`crate::Relation`] is built) but lets users declare the natural
/// direction of each attribute in the [`crate::Schema`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Preference {
    /// Lower values are better (cost, duration, price, …). The default.
    #[default]
    Min,
    /// Higher values are better (rating, amenities, popularity, …).
    Max,
}

impl Preference {
    /// Normalise a raw attribute value into the internal lower-is-better
    /// orientation.
    #[inline]
    pub fn normalize(self, value: f64) -> f64 {
        match self {
            Preference::Min => value,
            Preference::Max => -value,
        }
    }

    /// Invert [`Preference::normalize`]: recover the raw value from the
    /// internally stored one.
    #[inline]
    pub fn denormalize(self, value: f64) -> f64 {
        // Negation is an involution, so the two directions coincide.
        self.normalize(value)
    }

    /// Returns `true` when `a` is strictly preferred over `b` under this
    /// preference, comparing *raw* (non-normalised) values.
    #[inline]
    pub fn prefers(self, a: f64, b: f64) -> bool {
        match self {
            Preference::Min => a < b,
            Preference::Max => a > b,
        }
    }
}

impl fmt::Display for Preference {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Preference::Min => write!(f, "min"),
            Preference::Max => write!(f, "max"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn min_is_identity() {
        assert_eq!(Preference::Min.normalize(3.5), 3.5);
        assert_eq!(Preference::Min.denormalize(3.5), 3.5);
    }

    #[test]
    fn max_negates_and_roundtrips() {
        assert_eq!(Preference::Max.normalize(3.5), -3.5);
        assert_eq!(
            Preference::Max.denormalize(Preference::Max.normalize(2.0)),
            2.0
        );
    }

    #[test]
    fn prefers_follows_direction() {
        assert!(Preference::Min.prefers(1.0, 2.0));
        assert!(!Preference::Min.prefers(2.0, 1.0));
        assert!(Preference::Max.prefers(5.0, 2.0));
        assert!(!Preference::Max.prefers(2.0, 5.0));
    }

    #[test]
    fn prefers_is_irreflexive() {
        assert!(!Preference::Min.prefers(1.0, 1.0));
        assert!(!Preference::Max.prefers(1.0, 1.0));
    }

    #[test]
    fn default_is_min() {
        assert_eq!(Preference::default(), Preference::Min);
    }

    #[test]
    fn display() {
        assert_eq!(Preference::Min.to_string(), "min");
        assert_eq!(Preference::Max.to_string(), "max");
    }
}
