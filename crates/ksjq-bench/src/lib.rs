//! Benchmark harness library for the KSJQ paper reproduction.
//!
//! [`PaperParams`] mirrors Table 7's knobs; [`run_algorithms`] /
//! [`run_find_k`] execute the three KSJQ algorithms (G/D/N) or the three
//! find-k strategies (B/R/N) and report the per-phase breakdown the
//! paper's stacked bar charts show. The `harness` binary maps one
//! subcommand to each figure; the `benches/` directory holds Criterion
//! microbenchmarks over the same workloads.

pub mod kernel;

pub use kernel::{
    compare_verification_kernels, compare_verification_kernels_sampled, measure_domgen_scaling,
    prepare_candidates, run_columnar, run_materialized, run_split, DomgenRun, KernelComparison,
    KernelCost,
};

use ksjq_core::{
    find_k_at_least, ksjq_dominator_based, ksjq_grouping, ksjq_naive, Algorithm, Config,
    FindKReport, FindKStrategy, KsjqOutput,
};
use ksjq_datagen::{DataType, DatasetSpec};
use ksjq_join::{AggFunc, JoinContext, JoinSpec};
use ksjq_relation::Relation;
use std::time::{Duration, Instant};

/// The paper's experimental knobs (Table 7 defaults).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PaperParams {
    /// Tuples per base relation (`n`, default 3300).
    pub n: usize,
    /// Attributes per base relation (`d`, default 7).
    pub d: usize,
    /// Aggregated attributes (`a`, default 2).
    pub a: usize,
    /// Join groups (`g`, default 10).
    pub g: usize,
    /// Skyline attributes a dominator needs (`k`, default 11).
    pub k: usize,
    /// Data distribution (`T`, default independent).
    pub data_type: DataType,
    /// Base seed; the two relations use `seed` and `seed + 1000`.
    pub seed: u64,
}

impl Default for PaperParams {
    fn default() -> Self {
        PaperParams {
            n: 3300,
            d: 7,
            a: 2,
            g: 10,
            k: 11,
            data_type: DataType::Independent,
            seed: 42,
        }
    }
}

impl PaperParams {
    /// Scale the dataset size by `scale` (keeps every other knob).
    pub fn scaled(mut self, scale: f64) -> Self {
        self.n = ((self.n as f64 * scale).round() as usize).max(10);
        self
    }

    /// Generate the two base relations.
    pub fn relations(&self) -> (Relation, Relation) {
        let spec = DatasetSpec {
            n: self.n,
            agg_attrs: self.a,
            local_attrs: self.d - self.a,
            groups: self.g,
            data_type: self.data_type,
            seed: self.seed,
        };
        let spec2 = DatasetSpec {
            seed: self.seed + 1000,
            ..spec
        };
        (spec.generate(), spec2.generate())
    }

    /// The aggregation functions (`sum`, as in the paper's experiments).
    pub fn funcs(&self) -> Vec<AggFunc> {
        vec![AggFunc::Sum; self.a]
    }

    /// Bind the join context over generated relations.
    pub fn context<'a>(&self, r1: &'a Relation, r2: &'a Relation) -> JoinContext<'a> {
        JoinContext::new(r1, r2, JoinSpec::Equality, &self.funcs())
            .expect("paper params always produce a valid context")
    }
}

/// One measured algorithm execution.
#[derive(Debug, Clone)]
pub struct AlgoRun {
    /// "G", "D" or "N" (the paper's labels).
    pub label: &'static str,
    /// Wall-clock total.
    pub total: Duration,
    /// The execution's result (stats carry the phase breakdown).
    pub output: KsjqOutput,
}

/// The paper's algorithm label.
pub fn label_of(algo: Algorithm) -> &'static str {
    match algo {
        Algorithm::Grouping => "G",
        Algorithm::DominatorBased => "D",
        Algorithm::Naive => "N",
    }
}

/// Run the given algorithms on one workload, checking they agree.
pub fn run_algorithms(
    cx: &JoinContext<'_>,
    k: usize,
    cfg: &Config,
    algos: &[Algorithm],
) -> Vec<AlgoRun> {
    let mut runs = Vec::new();
    for &algo in algos {
        let t = Instant::now();
        let output = match algo {
            Algorithm::Naive => ksjq_naive(cx, k, cfg),
            Algorithm::Grouping => ksjq_grouping(cx, k, cfg),
            Algorithm::DominatorBased => ksjq_dominator_based(cx, k, cfg),
        }
        .expect("benchmark workloads are valid");
        let total = t.elapsed();
        runs.push(AlgoRun {
            label: label_of(algo),
            total,
            output,
        });
    }
    // All algorithms must agree — a benchmark that measures wrong answers
    // measures nothing.
    for w in runs.windows(2) {
        assert_eq!(
            w[0].output.pairs, w[1].output.pairs,
            "{} and {} disagree",
            w[0].label, w[1].label
        );
    }
    runs
}

/// One measured find-k strategy execution.
#[derive(Debug, Clone)]
pub struct FindKRun {
    /// "B", "R" or "N" (the paper's labels).
    pub label: &'static str,
    /// Wall-clock total.
    pub total: Duration,
    /// The strategy's report.
    pub report: FindKReport,
}

/// Run all three find-k strategies for `delta`, checking they agree.
pub fn run_find_k(cx: &JoinContext<'_>, delta: usize, cfg: &Config) -> Vec<FindKRun> {
    let strategies = [
        (FindKStrategy::Binary, "B"),
        (FindKStrategy::Range, "R"),
        (FindKStrategy::Naive, "N"),
    ];
    let mut runs = Vec::new();
    for (strategy, label) in strategies {
        let t = Instant::now();
        let report = find_k_at_least(cx, delta, strategy, cfg).expect("valid workload");
        let total = t.elapsed();
        runs.push(FindKRun {
            label,
            total,
            report,
        });
    }
    assert_eq!(runs[0].report.k, runs[1].report.k, "B and R disagree");
    assert_eq!(runs[0].report.k, runs[2].report.k, "B and N disagree");
    runs
}

/// Milliseconds with two decimals, for table output.
pub fn ms(d: Duration) -> String {
    format!("{:.2}", d.as_secs_f64() * 1e3)
}

/// Print the standard KSJQ result table header.
pub fn print_header(config_col: &str) {
    println!(
        "{:>14} {:>4} {:>10} {:>10} {:>10} {:>10} {:>10} {:>9}",
        config_col,
        "alg",
        "group(ms)",
        "join(ms)",
        "domgen(ms)",
        "rest(ms)",
        "total(ms)",
        "|skyline|"
    );
}

/// Print one KSJQ result row.
pub fn print_run(config: &str, run: &AlgoRun) {
    let p = run.output.stats.phases;
    println!(
        "{:>14} {:>4} {:>10} {:>10} {:>10} {:>10} {:>10} {:>9}",
        config,
        run.label,
        ms(p.grouping),
        ms(p.join),
        ms(p.dominator_gen),
        ms(p.remaining),
        ms(run.total),
        run.output.len()
    );
}

/// Print the find-k table header.
pub fn print_find_k_header(config_col: &str) {
    println!(
        "{:>14} {:>5} {:>5} {:>5} {:>6} {:>10} {:>10} {:>10}",
        config_col, "strat", "k", "full", "bound", "group(ms)", "rest(ms)", "total(ms)"
    );
}

/// Print one find-k result row.
pub fn print_find_k_run(config: &str, run: &FindKRun) {
    let p = run.report.phases;
    println!(
        "{:>14} {:>5} {:>5} {:>5} {:>6} {:>10} {:>10} {:>10}",
        config,
        run.label,
        run.report.k,
        run.report.full_computations,
        run.report.bound_computations,
        ms(p.grouping),
        ms(p.join + p.remaining),
        ms(run.total)
    );
}

/// All three algorithms, paper order.
pub const GDN: [Algorithm; 3] = [
    Algorithm::Grouping,
    Algorithm::DominatorBased,
    Algorithm::Naive,
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults() {
        let p = PaperParams::default();
        assert_eq!((p.n, p.d, p.a, p.g, p.k), (3300, 7, 2, 10, 11));
    }

    #[test]
    fn scaled_keeps_other_knobs() {
        let p = PaperParams::default().scaled(0.1);
        assert_eq!(p.n, 330);
        assert_eq!(p.d, 7);
        let p = PaperParams::default().scaled(0.0001);
        assert_eq!(p.n, 10); // floor
    }

    #[test]
    fn run_algorithms_agree_on_tiny_workload() {
        let params = PaperParams {
            n: 60,
            d: 4,
            a: 1,
            g: 3,
            k: 6,
            ..Default::default()
        };
        let (r1, r2) = params.relations();
        let cx = params.context(&r1, &r2);
        let runs = run_algorithms(&cx, params.k, &Config::default(), &GDN);
        assert_eq!(runs.len(), 3);
        assert_eq!(runs[0].output.pairs, runs[2].output.pairs);
    }

    #[test]
    fn run_find_k_agrees_on_tiny_workload() {
        let params = PaperParams {
            n: 60,
            d: 4,
            a: 0,
            g: 3,
            k: 6,
            ..Default::default()
        };
        let (r1, r2) = params.relations();
        let cx = params.context(&r1, &r2);
        let runs = run_find_k(&cx, 5, &Config::default());
        assert_eq!(runs.len(), 3);
    }

    #[test]
    fn ms_formatting() {
        assert_eq!(ms(Duration::from_millis(1500)), "1500.00");
        assert_eq!(ms(Duration::from_micros(1500)), "1.50");
    }
}
