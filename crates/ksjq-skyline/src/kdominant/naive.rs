//! Exhaustive pairwise k-dominant skyline.
//!
//! `O(n²)` comparisons with early exit; correct by construction and the
//! oracle every other algorithm is property-tested against.

use crate::RowAccess;
use ksjq_relation::k_dominates;

/// Compute the k-dominant skyline of `members` by comparing every pair.
///
/// Returns surviving ids in the order they appear in `members`.
pub fn kdom_naive<R: RowAccess>(rows: &R, members: &[u32], k: usize) -> Vec<u32> {
    let mut out = Vec::new();
    'outer: for &p in members {
        let prow = rows.row(p);
        for &q in members {
            if q != p && k_dominates(rows.row(q), prow, k) {
                continue 'outer;
            }
        }
        out.push(p);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MatrixView;

    fn ids(n: usize) -> Vec<u32> {
        (0..n as u32).collect()
    }

    #[test]
    fn equals_full_skyline_at_k_eq_d() {
        let data = [1.0, 3.0, 3.0, 1.0, 2.0, 2.0, 4.0, 4.0];
        let m = MatrixView::new(2, &data);
        assert_eq!(kdom_naive(&m, &ids(4), 2), vec![0, 1, 2]);
    }

    #[test]
    fn smaller_k_prunes_more() {
        // With k = 1, (2,2) 1-dominates both extremes and vice versa:
        // mutual domination annihilates everything except… let's see.
        // (1,3) vs (3,1): each 1-dominates the other → both out.
        // (2,2) vs (1,3): (1,3) is better in attr0 → 1-dominates (2,2) → out.
        let data = [1.0, 3.0, 3.0, 1.0, 2.0, 2.0];
        let m = MatrixView::new(2, &data);
        assert_eq!(kdom_naive(&m, &ids(3), 1), Vec::<u32>::new());
    }

    #[test]
    fn skyline_can_be_empty_with_cycles() {
        // A 3-cycle under 2-dominance in 3 dims (paper Sec. 2.2).
        let data = [
            1.0, 2.0, 3.0, //
            3.0, 1.0, 2.0, //
            2.0, 3.0, 1.0, //
        ];
        let m = MatrixView::new(3, &data);
        assert_eq!(kdom_naive(&m, &ids(3), 2), Vec::<u32>::new());
        // At k = 3 (full dominance) all three are incomparable.
        assert_eq!(kdom_naive(&m, &ids(3), 3), vec![0, 1, 2]);
    }

    #[test]
    fn duplicates_survive_together() {
        let data = [1.0, 1.0, 1.0, 1.0];
        let m = MatrixView::new(2, &data);
        assert_eq!(kdom_naive(&m, &ids(2), 1), vec![0, 1]);
    }

    #[test]
    fn subset_members_only() {
        let data = [0.0, 0.0, 1.0, 1.0, 2.0, 2.0];
        let m = MatrixView::new(2, &data);
        assert_eq!(kdom_naive(&m, &[1, 2], 2), vec![1]);
    }

    #[test]
    fn monotone_in_k_lemma1() {
        // Lemma 1: skyline(j) ⊆ skyline(i) for j ≤ i.
        let data = [
            4.0, 1.0, 7.0, 2.0, //
            2.0, 5.0, 3.0, 6.0, //
            6.0, 3.0, 1.0, 4.0, //
            1.0, 7.0, 5.0, 1.0, //
            3.0, 2.0, 6.0, 5.0, //
        ];
        let m = MatrixView::new(4, &data);
        let all = ids(5);
        let mut prev: Vec<u32> = vec![];
        for k in 1..=4 {
            let cur = kdom_naive(&m, &all, k);
            for p in &prev {
                assert!(cur.contains(p), "k={k} lost tuple {p}");
            }
            prev = cur;
        }
    }
}
