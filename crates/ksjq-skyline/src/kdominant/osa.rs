//! One-Scan Algorithm (OSA) for k-dominant skylines.
//!
//! Maintains two sets while scanning the input once:
//!
//! * `R` — current k-dominant skyline candidates;
//! * `T` — tuples that are already known *not* to be k-dominant skylines
//!   but are not fully dominated by anything seen, so they may still
//!   k-dominate future arrivals (k-dominance is not transitive, so these
//!   cannot be forgotten).
//!
//! A tuple that is *fully* dominated can be discarded outright: if `r ≻ q`
//! (all attributes) and `q ≻ₖ p`, then `r ≻ₖ p` as well, so `r` subsumes
//! `q` as a dominator. This is the invariant that makes one scan exact —
//! every input tuple is either in `R ∪ T` or fully dominated by a tuple
//! that is, and full dominance is transitive.

use crate::RowAccess;
use ksjq_relation::{dominates, k_dominates};

/// Compute the k-dominant skyline of `members` in one scan.
///
/// Returns surviving ids in the order they appear in `members`.
pub fn kdom_osa<R: RowAccess>(rows: &R, members: &[u32], k: usize) -> Vec<u32> {
    // R: candidate k-dominant skylines; T: eliminated potential dominators.
    let mut r_set: Vec<u32> = Vec::new();
    let mut t_set: Vec<u32> = Vec::new();

    for &p in members {
        let prow = rows.row(p);
        let mut p_kdominated = false;
        let mut p_fully_dominated = false;

        // Compare against candidates; evict candidates p k-dominates.
        let mut i = 0;
        while i < r_set.len() {
            let c = r_set[i];
            let crow = rows.row(c);
            if k_dominates(crow, prow, k) {
                p_kdominated = true;
                if dominates(crow, prow) {
                    p_fully_dominated = true;
                }
            }
            if k_dominates(prow, crow, k) {
                r_set.swap_remove(i);
                // The evicted candidate may still dominate future tuples —
                // keep it unless p subsumes it via full dominance.
                if !dominates(prow, crow) {
                    t_set.push(c);
                }
            } else {
                i += 1;
            }
        }

        // Compare against eliminated dominators; discard those p subsumes.
        let mut j = 0;
        while j < t_set.len() {
            let t = t_set[j];
            let trow = rows.row(t);
            if k_dominates(trow, prow, k) {
                p_kdominated = true;
                if dominates(trow, prow) {
                    p_fully_dominated = true;
                }
            }
            if dominates(prow, trow) {
                t_set.swap_remove(j);
            } else {
                j += 1;
            }
        }

        if !p_kdominated {
            r_set.push(p);
        } else if !p_fully_dominated {
            t_set.push(p);
        }
        // Fully dominated tuples vanish: their dominator k-dominates
        // everything they would.
    }

    let pos: std::collections::HashMap<u32, usize> =
        members.iter().enumerate().map(|(i, &m)| (m, i)).collect();
    r_set.sort_by_key(|m| pos[m]);
    r_set
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kdominant::naive::kdom_naive;
    use crate::MatrixView;

    fn ids(n: usize) -> Vec<u32> {
        (0..n as u32).collect()
    }

    fn pseudorandom(n: usize, d: usize, modulus: u64, seed: u64) -> Vec<f64> {
        let mut state = seed;
        (0..n * d)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 33) % modulus) as f64
            })
            .collect()
    }

    #[test]
    fn matches_naive_small() {
        let data = [
            1.0, 2.0, 3.0, //
            3.0, 1.0, 2.0, //
            2.0, 3.0, 1.0, //
            1.0, 1.0, 1.0, //
        ];
        let m = MatrixView::new(3, &data);
        for k in 1..=3 {
            assert_eq!(
                kdom_osa(&m, &ids(4), k),
                kdom_naive(&m, &ids(4), k),
                "k={k}"
            );
        }
    }

    #[test]
    fn matches_naive_pseudorandom() {
        for seed in [3u64, 11, 1234] {
            let data = pseudorandom(150, 5, 8, seed);
            let m = MatrixView::new(5, &data);
            let all = ids(150);
            for k in 1..=5 {
                assert_eq!(
                    kdom_osa(&m, &all, k),
                    kdom_naive(&m, &all, k),
                    "seed={seed} k={k}"
                );
            }
        }
    }

    #[test]
    fn eliminated_tuple_still_dominates_later_arrival() {
        // x arrives, is evicted by y, yet x (now in T) must kill z.
        let data = [
            5.0, 5.0, 5.0, 5.0, // x
            4.0, 4.0, 4.0, 6.0, // y evicts x (not fully: 6 > 5)
            6.0, 6.0, 0.0, 5.0, // z: 3-dominated only by x
        ];
        let m = MatrixView::new(4, &data);
        assert_eq!(kdom_osa(&m, &ids(3), 3), vec![1]);
    }

    #[test]
    fn fully_dominated_tuples_are_dropped_safely() {
        // q is fully dominated by r; anything q kills, r also kills.
        let data = [
            1.0, 1.0, 1.0, // r
            2.0, 2.0, 2.0, // q (fully dominated, discarded)
            1.5, 3.0, 3.0, // z: 2-dominated by q — and by r
        ];
        let m = MatrixView::new(3, &data);
        assert_eq!(kdom_osa(&m, &ids(3), 2), kdom_naive(&m, &ids(3), 2));
        assert_eq!(kdom_osa(&m, &ids(3), 2), vec![0]);
    }

    #[test]
    fn empty_and_singleton() {
        let m = MatrixView::new(2, &[]);
        assert!(kdom_osa(&m, &[], 1).is_empty());
        let data = [7.0, 7.0];
        let m = MatrixView::new(2, &data);
        assert_eq!(kdom_osa(&m, &ids(1), 1), vec![0]);
    }
}
