//! Monotone aggregation functions (paper Sec. 5.6, Assumption 2).
//!
//! When a joined tuple is formed, each aggregate slot combines one
//! attribute from each leg into a single value (total cost, total
//! duration, …). The paper's Assumption 2 requires the function to be
//! monotone so that base-relation dominance propagates to the joined
//! relation. The pruning theorems additionally need **strict**
//! monotonicity: with a non-strict function such as `max`, a strictly
//! better base attribute can aggregate to an *equal* joined value,
//! erasing the strict-preference witness that Theorem 4's proof
//! constructs — see `ksjq-core`'s `max_aggregate_breaks_theorem_4` test
//! for a concrete counterexample. The optimized KSJQ algorithms therefore
//! reject functions where [`AggFunc::is_strictly_monotone`] is false;
//! the naïve algorithm accepts them.

use crate::error::{JoinError, JoinResult};
use std::fmt;

/// A monotone binary aggregation function.
///
/// Functions operate on *raw* (denormalised) attribute values; the
/// [`crate::JoinContext`] handles normalisation around the call.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AggFunc {
    /// `x + y` — total cost, total duration. Strictly monotone.
    Sum,
    /// `wl·x + wr·y` with positive weights — e.g. discounting the second
    /// leg. Strictly monotone.
    WeightedSum {
        /// Weight of the left leg's value (must be > 0).
        left: f64,
        /// Weight of the right leg's value (must be > 0).
        right: f64,
    },
    /// `min(x, y)` — monotone but **not strictly**: rejected by the
    /// optimized algorithms.
    Min,
    /// `max(x, y)` — monotone but **not strictly**: rejected by the
    /// optimized algorithms.
    Max,
}

impl AggFunc {
    /// Validate the function's parameters.
    pub fn validate(&self) -> JoinResult<()> {
        if let AggFunc::WeightedSum { left, right } = self {
            if !(left.is_finite() && right.is_finite() && *left > 0.0 && *right > 0.0) {
                return Err(JoinError::InvalidAggregate(format!(
                    "weighted sum needs positive finite weights, got ({left}, {right})"
                )));
            }
        }
        Ok(())
    }

    /// Combine two raw attribute values.
    #[inline]
    pub fn combine(&self, x: f64, y: f64) -> f64 {
        match self {
            AggFunc::Sum => x + y,
            AggFunc::WeightedSum { left, right } => left * x + right * y,
            AggFunc::Min => x.min(y),
            AggFunc::Max => x.max(y),
        }
    }

    /// Is the function *strictly* monotone in each argument
    /// (`x1 < x2 ⇒ f(x1, y) < f(x2, y)`)?
    ///
    /// Required by the grouping and dominator-based algorithms; see the
    /// module docs.
    #[inline]
    pub fn is_strictly_monotone(&self) -> bool {
        matches!(self, AggFunc::Sum | AggFunc::WeightedSum { .. })
    }
}

impl fmt::Display for AggFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AggFunc::Sum => write!(f, "sum"),
            AggFunc::WeightedSum { left, right } => write!(f, "wsum({left},{right})"),
            AggFunc::Min => write!(f, "min"),
            AggFunc::Max => write!(f, "max"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn combine_semantics() {
        assert_eq!(AggFunc::Sum.combine(2.0, 3.0), 5.0);
        assert_eq!(
            AggFunc::WeightedSum {
                left: 1.0,
                right: 0.5
            }
            .combine(2.0, 4.0),
            4.0
        );
        assert_eq!(AggFunc::Min.combine(2.0, 3.0), 2.0);
        assert_eq!(AggFunc::Max.combine(2.0, 3.0), 3.0);
    }

    #[test]
    fn strictness_flags() {
        assert!(AggFunc::Sum.is_strictly_monotone());
        assert!(AggFunc::WeightedSum {
            left: 2.0,
            right: 1.0
        }
        .is_strictly_monotone());
        assert!(!AggFunc::Min.is_strictly_monotone());
        assert!(!AggFunc::Max.is_strictly_monotone());
    }

    #[test]
    fn weighted_sum_validation() {
        assert!(AggFunc::WeightedSum {
            left: 1.0,
            right: 1.0
        }
        .validate()
        .is_ok());
        assert!(AggFunc::WeightedSum {
            left: 0.0,
            right: 1.0
        }
        .validate()
        .is_err());
        assert!(AggFunc::WeightedSum {
            left: 1.0,
            right: -2.0
        }
        .validate()
        .is_err());
        assert!(AggFunc::WeightedSum {
            left: f64::NAN,
            right: 1.0
        }
        .validate()
        .is_err());
        assert!(AggFunc::Sum.validate().is_ok());
    }

    #[test]
    fn monotonicity_preserved_pointwise() {
        // For each function: x1 <= x2 and y1 <= y2 ⇒ f(x1,y1) <= f(x2,y2)
        // (Assumption 2 of the paper, non-strict form).
        let funcs = [
            AggFunc::Sum,
            AggFunc::WeightedSum {
                left: 0.3,
                right: 2.0,
            },
            AggFunc::Min,
            AggFunc::Max,
        ];
        let grid = [-2.0, 0.0, 1.0, 1.5, 7.0];
        for f in funcs {
            for &x1 in &grid {
                for &x2 in &grid {
                    for &y1 in &grid {
                        for &y2 in &grid {
                            if x1 <= x2 && y1 <= y2 {
                                assert!(
                                    f.combine(x1, y1) <= f.combine(x2, y2),
                                    "{f} not monotone at ({x1},{y1}) vs ({x2},{y2})"
                                );
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn max_is_not_strict_witness() {
        // The concrete failure mode: 1 < 2 but max(1, 10) == max(2, 10).
        assert_eq!(
            AggFunc::Max.combine(1.0, 10.0),
            AggFunc::Max.combine(2.0, 10.0)
        );
    }
}
