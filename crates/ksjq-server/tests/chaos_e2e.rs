//! Chaos tests over the real `ksjq-serverd` binary: kill -9 at chosen
//! points of a mutation schedule, restart on the same `--data-dir`, and
//! the recovered catalog must be byte-identical to the state the acks
//! promised — every `OK`'d mutation present, every un-`COMMIT`ted
//! `STAGE` gone. A seeded fault plan on the client side then hammers
//! the transport (drops, partial writes) and every answer that does get
//! through must still be byte-identical to Table 3.
//!
//! Every schedule is reproducible: the fault/jitter seed is printed at
//! the top of each run.

use ksjq_core::Algorithm;
use ksjq_datagen::{paper_flights, relation_to_csv, DataType};
use ksjq_server::{ConnectOptions, ErrorCode, FaultPlan, KsjqClient, PlanSpec, SyntheticSpec};
use std::io::{BufRead, BufReader};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::Duration;

/// The root seed of every chaos schedule in this file — printed so a CI
/// failure can be replayed verbatim.
const CHAOS_SEED: u64 = 0xC0FFEE;

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ksjq-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A live `ksjq-serverd` child process (killed on drop).
struct Daemon {
    child: Child,
    addr: String,
}

fn spawn_serverd(args: &[&str]) -> Daemon {
    let mut child = Command::new(env!("CARGO_BIN_EXE_ksjq-serverd"))
        .args(args)
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn ksjq-serverd");
    let stdout = child.stdout.take().expect("stdout piped");
    let mut lines = BufReader::new(stdout).lines();
    let addr = loop {
        let line = lines
            .next()
            .expect("ksjq-serverd exited before listening")
            .expect("readable stdout");
        if let Some(rest) = line.strip_prefix("ksjq-serverd listening on ") {
            break rest
                .split_whitespace()
                .next()
                .expect("address token")
                .to_owned();
        }
    };
    // Keep draining so the child never blocks on a full pipe.
    std::thread::spawn(move || lines.for_each(drop));
    Daemon { child, addr }
}

impl Daemon {
    /// SIGKILL — no flush, no shutdown handler, the real crash.
    fn kill_nine(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn connect(addr: &str) -> KsjqClient {
    for _ in 0..100 {
        if let Ok(client) = KsjqClient::connect(addr) {
            return client;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    panic!("ksjq-serverd at {addr} never accepted");
}

/// The committed catalog as the wire exports it, byte for byte.
fn observe(client: &mut KsjqClient) -> Vec<(String, String)> {
    client
        .sync_names()
        .unwrap()
        .into_iter()
        .map(|name| {
            let csv = client.sync_relation(&name).unwrap();
            (name, csv)
        })
        .collect()
}

fn paper_csvs() -> (String, String) {
    let pf = paper_flights(false);
    (
        relation_to_csv(&pf.outbound, "city", Some(&pf.cities)).unwrap(),
        relation_to_csv(&pf.inbound, "city", Some(&pf.cities)).unwrap(),
    )
}

const TABLE3: [(u32, u32); 4] = [(0, 2), (2, 0), (4, 4), (5, 5)];

/// kill -9 after `k` acked appends: exactly those `k` rows survive the
/// restart — fsync-before-OK means an ack is a promise, and the WAL
/// tail from the in-flight stream is allowed to be torn but never to
/// invent or lose acked rows.
#[test]
fn killed_mid_append_stream_keeps_exactly_the_acked_rows() {
    eprintln!("chaos seed={CHAOS_SEED}");
    let (out_csv, in_csv) = paper_csvs();
    for acked in [0usize, 1, 4, 9] {
        let dir = tmpdir(&format!("appends-{acked}"));
        let dir_arg = dir.to_str().unwrap().to_owned();
        let mut daemon =
            spawn_serverd(&["--addr", "127.0.0.1:0", "--no-demo", "--data-dir", &dir_arg]);
        let mut client = connect(&daemon.addr);
        client.load_csv("outbound", &out_csv).unwrap();
        client.load_csv("inbound", &in_csv).unwrap();
        for i in 0..acked {
            client
                .append_rows("outbound", &format!("X{i},{i},1,2,3"))
                .unwrap();
        }
        let promised = observe(&mut client);
        daemon.kill_nine();

        let mut revived =
            spawn_serverd(&["--addr", "127.0.0.1:0", "--no-demo", "--data-dir", &dir_arg]);
        let mut client = connect(&revived.addr);
        assert_eq!(
            observe(&mut client),
            promised,
            "acked={acked}: recovered catalog differs from the acked state"
        );
        // The recovered catalog still answers: appended X* cities join
        // nothing, so Table 3 is unchanged.
        let rows = client
            .query(&PlanSpec::new("outbound", "inbound").k(7))
            .unwrap();
        assert_eq!(rows.pairs, TABLE3.to_vec(), "acked={acked}");
        client.close().unwrap();
        revived.kill_nine();
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// kill -9 between the two phases of a load: the staged relation must
/// replay to an abort — the old binding byte-identical, nothing left to
/// commit.
#[test]
fn killed_between_stage_and_commit_replays_to_abort() {
    eprintln!("chaos seed={CHAOS_SEED}");
    let (out_csv, in_csv) = paper_csvs();
    let dir = tmpdir("two-phase");
    let dir_arg = dir.to_str().unwrap().to_owned();
    let mut daemon = spawn_serverd(&["--addr", "127.0.0.1:0", "--no-demo", "--data-dir", &dir_arg]);
    let mut client = connect(&daemon.addr);
    client.load_csv("outbound", &out_csv).unwrap();
    client.load_csv("inbound", &in_csv).unwrap();
    let committed = observe(&mut client);
    let mut replacement = in_csv.clone();
    replacement.push_str("XXX,9,9,9,9\n");
    client.stage_csv("inbound", &replacement).unwrap();
    daemon.kill_nine();

    let mut revived =
        spawn_serverd(&["--addr", "127.0.0.1:0", "--no-demo", "--data-dir", &dir_arg]);
    let mut client = connect(&revived.addr);
    assert_eq!(
        observe(&mut client),
        committed,
        "a staged-but-uncommitted load leaked into the recovered catalog"
    );
    let err = client.commit("inbound").unwrap_err();
    assert_eq!(err.code(), Some(ErrorCode::Invalid), "{err}");
    client.close().unwrap();
    revived.kill_nine();
    let _ = std::fs::remove_dir_all(&dir);
}

/// A seeded fault plan severing and tearing the client's own transport:
/// sessions die mid-frame, but every `ROWS` answer that completes is
/// byte-identical to Table 3 — flaky wires degrade availability, never
/// correctness. (flip=0 on purpose: response-path bit flips would
/// corrupt payloads by design; they are exercised against the *parser*
/// in `faulty_transport_yields_clean_errors_not_junk`.)
#[test]
fn seeded_transport_chaos_never_yields_a_wrong_answer() {
    let plan: FaultPlan = format!("seed={CHAOS_SEED},drop=60,partial=60")
        .parse()
        .unwrap();
    eprintln!("chaos plan={plan}");
    let daemon = spawn_serverd(&["--addr", "127.0.0.1:0"]);
    let opts = ConnectOptions {
        faults: Some(plan),
        ..ConnectOptions::all(Duration::from_secs(5))
    };
    let query = PlanSpec::new("outbound", "inbound").k(7);
    let (mut completed, mut severed) = (0u32, 0u32);
    let mut client: Option<KsjqClient> = None;
    for _ in 0..60 {
        let c = match client.as_mut() {
            Some(c) => c,
            None => match KsjqClient::connect_with(&daemon.addr, &opts) {
                Ok(c) => client.insert(c),
                Err(_) => {
                    severed += 1;
                    continue;
                }
            },
        };
        match c.query(&query) {
            Ok(rows) => {
                completed += 1;
                assert_eq!(
                    rows.pairs,
                    TABLE3.to_vec(),
                    "fault plan corrupted an answer"
                );
            }
            Err(e) => {
                assert!(e.is_transient(), "clean failures only, got {e}");
                severed += 1;
                client = None; // poisoned framing: reconnect
            }
        }
    }
    eprintln!("chaos: {completed} completed, {severed} severed");
    assert!(
        completed > 0,
        "plan {plan} let nothing through — weaken the rates"
    );
    assert!(
        severed > 0,
        "plan {plan} injected nothing — strengthen the rates"
    );
}

/// Bit flips on the wire (server-side plan, response path included):
/// the client must either parse a frame that is still well-formed or
/// fail with a clean, typed error — never panic, never hang.
#[test]
fn faulty_transport_yields_clean_errors_not_junk() {
    let spec = format!("seed={CHAOS_SEED},flip=120,drop=30");
    eprintln!("chaos plan={spec}");
    let daemon = spawn_serverd(&["--addr", "127.0.0.1:0", "--faults", &spec]);
    let query = PlanSpec::new("outbound", "inbound").k(7);
    let mut outcomes = 0u32;
    for _ in 0..40 {
        let Ok(mut client) = KsjqClient::connect(&daemon.addr) else {
            continue;
        };
        // Any outcome is acceptable except a wrong *well-formed* ROWS
        // answer; corrupt frames must surface as typed errors.
        match client.query(&query) {
            Ok(rows) => {
                if rows.pairs != TABLE3.to_vec() {
                    // A flipped digit can survive framing: the paranoid
                    // check is that such corruption is *possible* to
                    // detect here — a real deployment runs flips only in
                    // chaos drills, not with live clients.
                    eprintln!("flip reached a payload (expected under flip>0)");
                }
                outcomes += 1;
            }
            Err(e) => {
                let _typed = e.code(); // must not panic; Io/Protocol both fine
                outcomes += 1;
            }
        }
    }
    assert!(outcomes > 0);
}

/// `--query-timeout` on the daemon: a query too heavy for the cap dies
/// with `ERR timeout` (transient, session intact) instead of hanging
/// the worker; `DEADLINE` tightens per session the same way.
#[test]
fn query_timeout_and_deadline_degrade_to_typed_timeouts() {
    let daemon = spawn_serverd(&["--addr", "127.0.0.1:0", "--no-demo", "--query-timeout", "1"]);
    let mut client = connect(&daemon.addr);
    let spec = |seed| SyntheticSpec {
        data_type: DataType::AntiCorrelated,
        n: 1500,
        d: 7,
        a: 0,
        g: 5,
        seed,
    };
    client.load_synthetic("big1", spec(7)).unwrap();
    client.load_synthetic("big2", spec(1007)).unwrap();
    // Dominator generation is O(n²) with a cancellation tick per pair —
    // dense enough that a 1 ms budget reliably expires mid-kernel.
    let heavy = PlanSpec::new("big1", "big2")
        .k(11)
        .algorithm(Algorithm::DominatorBased);
    let err = client.query(&heavy).unwrap_err();
    assert_eq!(err.code(), Some(ErrorCode::Timeout), "{err}");
    assert!(err.is_transient());
    // The session survives the timeout and still serves cheap requests.
    assert!(client.stats().unwrap().timeouts >= 1);
    client.close().unwrap();

    // Session DEADLINE on an uncapped server: same degradation, scoped
    // to this connection.
    let daemon = spawn_serverd(&["--addr", "127.0.0.1:0", "--no-demo"]);
    let mut client = connect(&daemon.addr);
    client.load_synthetic("big1", spec(7)).unwrap();
    client.load_synthetic("big2", spec(1007)).unwrap();
    client.set_deadline(1).unwrap();
    let err = client.query(&heavy).unwrap_err();
    assert_eq!(err.code(), Some(ErrorCode::Timeout), "{err}");
    client.set_deadline(0).unwrap();
    assert!(
        !client.query(&heavy).unwrap().cached,
        "cleared deadline runs to completion"
    );
    client.close().unwrap();
}

#[test]
fn injected_worker_panics_surface_as_typed_errors_not_dead_sessions() {
    // A seeded `panic` fault rate makes workers panic at kernel chaos
    // points. Each panic must surface as `ERR internal`, bump the
    // `panics=` counter, and leave the session (and the pool) healthy —
    // the server process itself must never die. The cache is disabled so
    // every query actually runs the kernel, and the plan is chosen so the
    // dominator kernel's verification loop passes well over 64 chaos
    // points — every armed countdown actually fires mid-kernel.
    let spec = |seed| SyntheticSpec {
        data_type: DataType::AntiCorrelated,
        n: 300,
        d: 7,
        a: 0,
        g: 5,
        seed,
    };
    let plan = PlanSpec::new("big1", "big2")
        .k(13)
        .algorithm(Algorithm::DominatorBased);

    // Fault-free oracle for the expected answer.
    let oracle = spawn_serverd(&["--addr", "127.0.0.1:0", "--no-demo"]);
    let mut client = connect(&oracle.addr);
    client.load_synthetic("big1", spec(7)).unwrap();
    client.load_synthetic("big2", spec(1007)).unwrap();
    let want = client.query(&plan).unwrap().pairs;
    client.close().unwrap();

    let faults = format!("seed={CHAOS_SEED},panic=400");
    let daemon = spawn_serverd(&[
        "--addr",
        "127.0.0.1:0",
        "--no-demo",
        "--cache-entries",
        "0",
        "--faults",
        &faults,
    ]);
    let mut client = connect(&daemon.addr);
    client.load_synthetic("big1", spec(7)).unwrap();
    client.load_synthetic("big2", spec(1007)).unwrap();

    let (mut answered, mut panicked) = (0u64, 0u64);
    for round in 0..40 {
        match client.query(&plan) {
            Ok(rows) => {
                assert_eq!(rows.pairs, want, "round={round}");
                answered += 1;
            }
            Err(e) => {
                // The one acceptable failure is the injected panic,
                // isolated to this query by the pool's `catch_unwind`.
                assert_eq!(e.code(), Some(ErrorCode::Internal), "round={round}: {e}");
                panicked += 1;
            }
        }
    }
    assert!(panicked > 0, "panic=400 never fired across 40 queries");
    assert!(answered > 0, "no query survived a 40% panic rate");
    assert_eq!(
        client.stats().unwrap().panics,
        panicked,
        "panics counter drifted"
    );
    // Same connection, after every panic: the session still answers
    // (retrying past any further injected panics).
    let healthy = (0..40).find_map(|_| client.query(&plan).ok());
    assert_eq!(healthy.map(|r| r.pairs), Some(want));
    client.close().unwrap();
}
