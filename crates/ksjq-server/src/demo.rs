//! The demo catalog `ksjq-serverd` and the harness's `--serve` mode
//! preload: the paper's Tables 1–2 (`outbound` / `inbound`, join on the
//! stop-over city, k ∈ [5, 8]) and the Sec. 7.4 synthetic flight network
//! (`net_outbound` / `net_inbound`, aggregate cost/time slots, Max
//! popularity/amenities, join on the hub).
//!
//! Every relation is ingested through [`Catalog::register_csv`] via the
//! *annotated* CSV exporter, for two reasons: the string join keys land
//! in the catalog-wide dictionary (so client `LOAD … INLINE` data joins
//! correctly against the demo relations — registering directly would
//! give equal key strings different group ids and silently mis-join),
//! and the annotations carry the aggregate slots and `Max` preferences
//! that a bare CSV round trip would lose.
//!
//! [`Catalog::register_csv`]: ksjq_relation::Catalog::register_csv

use ksjq_core::{CoreResult, Engine};
use ksjq_datagen::{paper_flights, relation_to_annotated_csv, FlightNetworkSpec};

/// Register the demo relations with `engine`. Fails only if the names
/// are already taken.
pub fn register_demo_catalog(engine: &Engine) -> CoreResult<()> {
    let pf = paper_flights(false);
    let net = FlightNetworkSpec::default().generate();
    for (name, rel, key, dict) in [
        ("outbound", &pf.outbound, "city", &pf.cities),
        ("inbound", &pf.inbound, "city", &pf.cities),
        ("net_outbound", &net.outbound, "hub", &net.hubs),
        ("net_inbound", &net.inbound, "hub", &net.hubs),
    ] {
        let csv = relation_to_annotated_csv(rel, key, Some(dict))
            .expect("demo relations have group keys");
        engine.catalog().register_csv(name, &csv)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ksjq_core::QueryPlan;
    use ksjq_join::AggFunc;

    #[test]
    fn demo_catalog_registers_and_serves_both_workloads() {
        let engine = Engine::new();
        register_demo_catalog(&engine).unwrap();
        assert_eq!(
            engine.catalog().names(),
            vec!["inbound", "net_inbound", "net_outbound", "outbound"]
        );
        // Tables 1–3 at k = 7.
        let out = engine
            .execute(&QueryPlan::new("outbound", "inbound").k(7))
            .unwrap();
        assert_eq!(out.len(), 4);
        // The flight network keeps its aggregate slots and Max attributes
        // through the CSV ingestion: the aggregate query must prepare.
        let net = engine
            .execute(
                &QueryPlan::new("net_outbound", "net_inbound")
                    .aggregates(&[AggFunc::Sum, AggFunc::Sum])
                    .k(6),
            )
            .unwrap();
        // Identical to querying the generated network directly.
        let direct = Engine::new();
        let gen = FlightNetworkSpec::default().generate();
        direct.register("net_outbound", gen.outbound).unwrap();
        direct.register("net_inbound", gen.inbound).unwrap();
        let expected = direct
            .execute(
                &QueryPlan::new("net_outbound", "net_inbound")
                    .aggregates(&[AggFunc::Sum, AggFunc::Sum])
                    .k(6),
            )
            .unwrap();
        assert_eq!(net.pairs, expected.pairs);

        // Duplicate registration fails cleanly.
        assert!(register_demo_catalog(&engine).is_err());
    }
}
